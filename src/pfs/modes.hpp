// pfs/modes.hpp — Intel PFS shared-file I/O modes.
//
// The paper (§5) complains that "both PFS and PIOFS have different I/O
// modes which make the programming for I/O very difficult".  PFS exposed
// a per-open *I/O mode* governing how a file pointer is shared among the
// processes that opened a file together:
//
//   M_UNIX    each process has its OWN pointer; no coordination (the
//             default; what FileHandle already provides).
//   M_LOG     ONE shared pointer; accesses are atomic and serialized in
//             arrival order (append-log semantics).  Every operation
//             costs a pointer-token round trip — a classic scalability
//             trap.
//   M_SYNC    one shared pointer and accesses proceed in STRICT RANK
//             ORDER: process r's i-th operation happens after process
//             r-1's i-th operation.  Fully deterministic, fully serial.
//   M_RECORD  synchronized-start interleaved records: the i-th operation
//             of process r lands at offset (i * P + r) * record_size,
//             computed locally — no token traffic, fully parallel, but
//             every operation must be exactly record_size bytes.
//   M_GLOBAL  all processes read the same data; one process performs the
//             physical access and the data is broadcast.
//
// SharedFile implements these on top of StripedFs.  It is deliberately
// separate from FileHandle: modes are a coordination layer, not a data
// path.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "mprt/collectives.hpp"
#include "mprt/comm.hpp"
#include "pfs/fs.hpp"
#include "simkit/resource.hpp"

namespace pfs {

enum class IoMode : std::uint8_t {
  kUnix = 0,
  kLog,
  kSync,
  kRecord,
  kGlobal,
};

constexpr std::string_view to_string(IoMode m) {
  switch (m) {
    case IoMode::kUnix:   return "M_UNIX";
    case IoMode::kLog:    return "M_LOG";
    case IoMode::kSync:   return "M_SYNC";
    case IoMode::kRecord: return "M_RECORD";
    case IoMode::kGlobal: return "M_GLOBAL";
  }
  return "?";
}

/// Shared state for one collective open (one per open, shared by ranks).
class SharedFileState {
 public:
  SharedFileState(simkit::Engine& eng, FileId file, IoMode mode,
                  std::uint64_t record_size, int nprocs)
      : file_(file),
        mode_(mode),
        record_size_(record_size),
        nprocs_(nprocs),
        token_(eng, 1) {}

  FileId file() const noexcept { return file_; }
  IoMode mode() const noexcept { return mode_; }
  std::uint64_t record_size() const noexcept { return record_size_; }
  int nprocs() const noexcept { return nprocs_; }

 private:
  friend class SharedFile;
  FileId file_;
  IoMode mode_;
  std::uint64_t record_size_;
  int nprocs_;
  simkit::Resource token_;        // the shared-pointer token (kLog)
  std::uint64_t shared_pos_ = 0;  // kLog/kSync shared pointer
  std::uint64_t sync_round_ = 0;  // kSync: completed operations
  int sync_turn_ = 0;             // kSync: whose turn within the round
  std::uint64_t op_seq_ = 0;      // kRecord: diagnostics
};

/// One rank's endpoint on a collectively opened file.
class SharedFile {
 public:
  /// Collective open: every rank of `comm` calls this with the same
  /// arguments.  `record_size` is required for kRecord.
  static simkit::Task<SharedFile> open(mprt::Comm& comm, StripedFs& fs,
                                       FileId file, IoMode mode,
                                       std::uint64_t record_size = 0,
                                       IoObserver* observer = nullptr);

  /// Mode-governed sequential write of `len` bytes (must equal the record
  /// size in kRecord mode).  Returns the file offset the data landed at.
  simkit::Task<std::uint64_t> write(std::uint64_t len,
                                    std::span<const std::byte> data = {});

  /// Mode-governed sequential read.  kGlobal: rank 0 reads, everyone
  /// gets the bytes (and the timing of the broadcast).
  simkit::Task<std::uint64_t> read(std::uint64_t len,
                                   std::span<std::byte> out = {});

  simkit::Task<void> close();

  IoMode mode() const noexcept { return state_->mode(); }
  int rank() const noexcept { return comm_->rank(); }
  /// This rank's private pointer (kUnix/kRecord bookkeeping).
  std::uint64_t local_pos() const noexcept { return local_pos_; }

 private:
  SharedFile(mprt::Comm& comm, StripedFs& fs,
             std::shared_ptr<SharedFileState> state, IoObserver* observer)
      : comm_(&comm), fs_(&fs), state_(std::move(state)),
        observer_(observer) {}

  simkit::Task<std::uint64_t> log_op(hw::AccessKind kind, std::uint64_t len,
                                     std::span<std::byte> out,
                                     std::span<const std::byte> in);
  simkit::Task<std::uint64_t> sync_op(hw::AccessKind kind, std::uint64_t len,
                                      std::span<std::byte> out,
                                      std::span<const std::byte> in);

  mprt::Comm* comm_;
  StripedFs* fs_;
  std::shared_ptr<SharedFileState> state_;
  IoObserver* observer_;
  std::uint64_t local_pos_ = 0;
  std::uint64_t my_ops_ = 0;
};

}  // namespace pfs
