#include "pfs/fs.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "audit/audit.hpp"
#include "simkit/combinators.hpp"

namespace pfs {

StripedFs::StripedFs(hw::Machine& machine, fault::Injector* injector)
    : machine_(machine),
      eng_(machine.engine()),
      injector_(injector),
      io_(machine.config().io) {
  const auto& cfg = machine.config();
  nodes_.reserve(cfg.io_nodes);
  for (std::size_t i = 0; i < cfg.io_nodes; ++i) {
    nodes_.push_back(std::make_unique<IoNode>(
        eng_, machine.io_node(i), i, io_, cfg.disk, injector_));
  }
  if (injector_) injector_->start(eng_);
}

FileId StripedFs::create(std::string name, bool backed) {
  const auto id = static_cast<FileId>(files_.size());
  // Start each file's round-robin on a different server so single-stripe
  // files don't all pile onto node 0 — PFS did the same.
  const auto first =
      static_cast<std::uint32_t>(id % nodes_.size());
  files_.push_back(std::make_unique<FileMeta>(
      std::move(name), backed,
      StripeMap(io_.stripe_unit_bytes,
                static_cast<std::uint32_t>(nodes_.size()), first)));
  return id;
}

FileId StripedFs::create_placed(std::string name, bool backed,
                                std::vector<std::uint32_t> servers) {
  if (servers.empty()) {
    throw std::invalid_argument("create_placed: empty server list");
  }
  std::vector<bool> seen(nodes_.size(), false);
  for (const std::uint32_t s : servers) {
    if (s >= nodes_.size()) {
      throw std::invalid_argument("create_placed: server index " +
                                  std::to_string(s) + " out of range");
    }
    if (seen[s]) {
      throw std::invalid_argument("create_placed: duplicate server " +
                                  std::to_string(s));
    }
    seen[s] = true;
  }
  const auto id = static_cast<FileId>(files_.size());
  const auto first = static_cast<std::uint32_t>(id % servers.size());
  files_.push_back(std::make_unique<FileMeta>(
      std::move(name), backed,
      StripeMap(io_.stripe_unit_bytes, std::move(servers), first)));
  return id;
}

simkit::Task<FileHandle> StripedFs::open(hw::NodeId client, FileId file,
                                         IoObserver* observer) {
  assert(file < files_.size());
  const simkit::Time t0 = eng_.now();
  co_await eng_.delay(simkit::milliseconds(io_.client_syscall_ms));
  // Metadata round-trip to the file's first server.
  IoNode& meta = *nodes_[files_[file]->map.server_of(0)];
  auto& net = machine_.network();
  co_await net.transfer(client, meta.node_id(), kHeaderBytes);
  co_await eng_.delay(simkit::milliseconds(io_.server_overhead_ms));
  co_await net.transfer(meta.node_id(), client, kHeaderBytes);
  FileHandle fh(this, file, client, observer);
  if (observer) {
    observer->record(OpKind::kOpen, t0, eng_.now() - t0, 0);
  }
  co_return fh;
}

simkit::Task<void> StripedFs::piece_read(hw::NodeId client, FileId file,
                                         StripePiece piece) {
  IoNode& node = *nodes_[piece.server];
  auto& net = machine_.network();
  co_await net.transfer(client, node.node_id(), kHeaderBytes);
  co_await node.process(hw::AccessKind::kRead, client, file,
                        piece.local_offset, piece.length);
  if (audit::Ledger* led = audit::current()) {
    led->note_read(file, piece.server,
                   piece.local_offset / io_.stripe_unit_bytes);
  }
  co_await net.transfer(node.node_id(), client, piece.length);
}

bool StripedFs::durable_at_ack() const noexcept {
  return !io_.write_behind ||
         io_.server.durability.policy ==
             iosrv::DurabilityPolicy::kWriteThrough ||
         io_.server.durability.policy == iosrv::DurabilityPolicy::kJournaled;
}

simkit::Task<void> StripedFs::piece_write(hw::NodeId client, FileId file,
                                          StripePiece piece,
                                          std::uint64_t group) {
  IoNode& node = *nodes_[piece.server];
  auto& net = machine_.network();
  co_await net.transfer(client, node.node_id(),
                        kHeaderBytes + piece.length);
  co_await node.process(hw::AccessKind::kWrite, client, file,
                        piece.local_offset, piece.length);
  // The ack the client just received: what it promises depends on the
  // durability policy, and the ledger holds the server to it.
  if (audit::Ledger* led = audit::current()) {
    led->note_write_acked(file, piece.server,
                          piece.local_offset / io_.stripe_unit_bytes,
                          piece.length, durable_at_ack(), group);
  }
}

simkit::Task<void> StripedFs::pread(hw::NodeId client, FileId file,
                                    std::uint64_t offset, std::uint64_t len,
                                    std::span<std::byte> out) {
  assert(file < files_.size());
  assert(out.empty() || out.size() == len);
  FileMeta& meta = *files_[file];
  co_await eng_.delay(simkit::milliseconds(io_.client_syscall_ms));
  if (len == 0) co_return;
  std::vector<simkit::Task<void>> ops;
  for (const StripePiece& piece : meta.map.split(offset, len)) {
    ops.push_back(piece_read(client, file, piece));
  }
  co_await simkit::when_all(eng_, std::move(ops));
  // Content materializes at completion time (holes read as zeros).
  if (meta.backed && !out.empty()) meta.store.read(offset, out);
}

simkit::Task<void> StripedFs::pwrite(hw::NodeId client, FileId file,
                                     std::uint64_t offset, std::uint64_t len,
                                     std::span<const std::byte> data) {
  assert(file < files_.size());
  assert(data.empty() || data.size() == len);
  FileMeta& meta = *files_[file];
  // Content lands at issue time; timing completes later.  (Simulated
  // applications synchronize reads after writes, as the real ones did.)
  if (meta.backed && !data.empty()) meta.store.write(offset, data);
  meta.size = std::max(meta.size, offset + len);
  co_await eng_.delay(simkit::milliseconds(io_.client_syscall_ms));
  if (len == 0) co_return;
  std::vector<StripePiece> pieces = meta.map.split(offset, len);
  // One client write spanning several server blocks is one atomic unit
  // to the application; the shared group id lets the auditor flag it as
  // torn when a crash makes some pieces durable and loses others.
  std::uint64_t group = 0;
  if (pieces.size() > 1) {
    if (audit::Ledger* led = audit::current()) group = led->begin_group();
  }
  std::vector<simkit::Task<void>> ops;
  ops.reserve(pieces.size());
  for (const StripePiece& piece : pieces) {
    ops.push_back(piece_write(client, file, piece, group));
  }
  co_await simkit::when_all(eng_, std::move(ops));
}

simkit::Task<void> StripedFs::flush(hw::NodeId client, FileId file) {
  co_await eng_.delay(simkit::milliseconds(io_.client_syscall_ms));
  (void)client;
  std::vector<simkit::Task<void>> ops;
  for (auto& node : nodes_) ops.push_back(node->drain(file));
  co_await simkit::when_all(eng_, std::move(ops));
}

simkit::Task<void> StripedFs::fsync(hw::NodeId client, FileId file) {
  co_await eng_.delay(simkit::milliseconds(io_.client_syscall_ms));
  (void)client;
  // Only the file's own servers hold its data; drain exactly those.
  // drain() rethrows recorded drain failures, so a barrier over lossy
  // writes fails instead of lying.
  std::vector<simkit::Task<void>> ops;
  for (const std::uint32_t s : files_.at(file)->map.server_list()) {
    ops.push_back(nodes_[s]->drain(file));
  }
  co_await simkit::when_all(eng_, std::move(ops));
}

simkit::Task<void> StripedFs::close(hw::NodeId client, FileId file) {
  // Close semantics: drain write-behind data, then a metadata round-trip.
  std::vector<simkit::Task<void>> ops;
  for (auto& node : nodes_) ops.push_back(node->drain(file));
  co_await simkit::when_all(eng_, std::move(ops));
  co_await eng_.delay(simkit::milliseconds(io_.client_syscall_ms));
  IoNode& meta = *nodes_[files_[file]->map.server_of(0)];
  auto& net = machine_.network();
  co_await net.transfer(client, meta.node_id(), kHeaderBytes);
  co_await net.transfer(meta.node_id(), client, kHeaderBytes);
}

simkit::Task<void> StripedFs::truncate(hw::NodeId client, FileId file,
                                       std::uint64_t new_size) {
  co_await eng_.delay(simkit::milliseconds(io_.client_syscall_ms));
  IoNode& meta = *nodes_[files_[file]->map.server_of(0)];
  auto& net = machine_.network();
  co_await net.transfer(client, meta.node_id(), kHeaderBytes);
  co_await eng_.delay(simkit::milliseconds(io_.server_overhead_ms));
  co_await net.transfer(meta.node_id(), client, kHeaderBytes);
  files_[file]->size = new_size;
}

void StripedFs::poke(FileId file, std::uint64_t offset,
                     std::span<const std::byte> data) {
  FileMeta& meta = *files_.at(file);
  assert(meta.backed);
  meta.store.write(offset, data);
  meta.size = std::max(meta.size, offset + data.size());
}

void StripedFs::peek(FileId file, std::uint64_t offset,
                     std::span<std::byte> out) const {
  files_.at(file)->store.read(offset, out);
}

std::uint64_t StripedFs::total_disk_reads() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->disk_reads();
  return n;
}

std::uint64_t StripedFs::total_disk_writes() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->disk_writes();
  return n;
}

bool StripedFs::file_lost_in(FileId file, simkit::Time t0,
                             simkit::Time t1) const {
  for (const auto& node : nodes_) {
    if (node->file_lost_in(file, t0, t1)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// FileHandle
// ---------------------------------------------------------------------------

simkit::Task<void> FileHandle::traced(OpKind kind, std::uint64_t bytes,
                                      simkit::Task<void> op) {
  simkit::Engine& eng = fs_->machine().engine();
  const simkit::Time t0 = eng.now();
  co_await std::move(op);
  if (observer_) observer_->record(kind, t0, eng.now() - t0, bytes);
}

simkit::Task<void> FileHandle::seek(std::uint64_t pos) {
  simkit::Engine& eng = fs_->machine().engine();
  const simkit::Time t0 = eng.now();
  co_await eng.delay(
      simkit::milliseconds(fs_->params().client_syscall_ms));
  pos_ = pos;
  if (observer_) observer_->record(OpKind::kSeek, t0, eng.now() - t0, 0);
}

simkit::Task<void> FileHandle::read(std::uint64_t len,
                                    std::span<std::byte> out) {
  const std::uint64_t at = pos_;
  pos_ += len;
  co_await traced(OpKind::kRead, len, fs_->pread(client_, file_, at, len,
                                                 out));
}

simkit::Task<void> FileHandle::write(std::uint64_t len,
                                     std::span<const std::byte> data) {
  const std::uint64_t at = pos_;
  pos_ += len;
  co_await traced(OpKind::kWrite, len,
                  fs_->pwrite(client_, file_, at, len, data));
}

simkit::Task<void> FileHandle::pread(std::uint64_t offset, std::uint64_t len,
                                     std::span<std::byte> out) {
  co_await traced(OpKind::kRead, len,
                  fs_->pread(client_, file_, offset, len, out));
}

simkit::Task<void> FileHandle::pwrite(std::uint64_t offset, std::uint64_t len,
                                      std::span<const std::byte> data) {
  co_await traced(OpKind::kWrite, len,
                  fs_->pwrite(client_, file_, offset, len, data));
}

simkit::ProcHandle FileHandle::iread(std::uint64_t offset, std::uint64_t len,
                                     std::span<std::byte> out) {
  return fs_->machine().engine().spawn(
      fs_->pread(client_, file_, offset, len, out), "iread");
}

simkit::Task<void> FileHandle::flush() {
  co_await traced(OpKind::kFlush, 0, fs_->flush(client_, file_));
}

simkit::Task<void> FileHandle::fsync() {
  co_await traced(OpKind::kFlush, 0, fs_->fsync(client_, file_));
}

simkit::Task<void> FileHandle::close() {
  co_await traced(OpKind::kClose, 0, fs_->close(client_, file_));
}

}  // namespace pfs
