#include "pfs/ionode.hpp"

#include <algorithm>
#include <cassert>

namespace pfs {

namespace {
constexpr std::uint64_t cache_blocks(const hw::IoSubsysParams& io) {
  const std::uint64_t blocks =
      io.cache_bytes_per_io_node / io.stripe_unit_bytes;
  return std::max<std::uint64_t>(blocks, 4);
}
}  // namespace

IoNode::IoNode(simkit::Engine& eng, hw::NodeId self, std::size_t index,
               const hw::IoSubsysParams& io, const hw::DiskParams& disk,
               fault::Injector* injector)
    : eng_(eng),
      self_(self),
      index_(index),
      injector_(injector),
      io_(io),
      front_(eng, 1),
      dirty_slots_(eng, cache_blocks(io)),
      cache_(iosrv::make_policy(io.server.policy, cache_blocks(io))) {
  disks_.reserve(io_.disks_per_io_node);
  for (std::uint32_t i = 0; i < io_.disks_per_io_node; ++i) {
    disks_.push_back(
        std::make_unique<DiskArm>(eng, disk, io_.scan_scheduling));
    if (injector_) {
      injector_->attach_disk(index_, i, &disks_.back()->mutable_model());
    }
  }
  if (io_.server.writeback.mode == iosrv::WritebackMode::kPool &&
      io_.write_behind) {
    pool_ = std::make_unique<iosrv::WritebackPool>(
        eng_, io_.server.writeback, cache_blocks(io_),
        [this](const iosrv::DirtyBlock& b) -> simkit::Task<void> {
          const FileId file = static_cast<FileId>(b.key.file);
          co_await disk_for(file).serve(phys_of(file, b.local_offset),
                                        b.length, hw::AccessKind::kWrite);
          ++disk_writes_;
          if (m_disk_writes_) m_disk_writes_->inc();
          if (m_wb_drained_) m_wb_drained_->inc();
          cache_->mark_clean(b.key);
        });
  }
  cache_->set_evict_listener([this](const iosrv::BlockKey& k) {
    if (m_cache_evictions_) m_cache_evictions_->inc();
    if (ra_unused_.erase(k) != 0) {
      ++ra_waste_;
      if (m_ra_waste_) m_ra_waste_->inc();
    }
  });
  if (metrics::Registry* r = metrics::current()) {
    // Cache and disk-op counters aggregate across nodes; the queue-depth
    // timeseries is per node (hot-spotting is a per-node phenomenon).
    const std::string prefix = "pfs.node" + std::to_string(index_) + ".";
    m_requests_ = &r->counter("pfs.requests");
    m_cache_hits_ = &r->counter("pfs.cache.hits");
    m_cache_misses_ = &r->counter("pfs.cache.misses");
    m_cache_evictions_ = &r->counter("pfs.cache.evictions");
    m_disk_reads_ = &r->counter("pfs.disk.reads");
    m_disk_writes_ = &r->counter("pfs.disk.writes");
    if (io_.server.readahead.enabled) {
      m_ra_issued_ = &r->counter("pfs.server.readahead.issued");
      m_ra_hits_ = &r->counter("pfs.server.readahead.hits");
      m_ra_late_hits_ = &r->counter("pfs.server.readahead.late_hits");
      m_ra_waste_ = &r->counter("pfs.server.readahead.waste");
    }
    if (pool_) {
      m_wb_drained_ = &r->counter("pfs.server.writeback.drained");
      m_wb_stalls_ = &r->counter("pfs.server.writeback.stalls");
    }
    m_queue_depth_ =
        &r->timeseries(prefix + "queue_depth", /*interval=*/1e-3);
  }
}

std::size_t IoNode::disk_queue_depth() const noexcept {
  std::size_t depth = 0;
  for (const auto& d : disks_) depth += d->queue_length();
  return depth;
}

void IoNode::check_faults() {
  if (!injector_) return;
  if (injector_->node_down(index_)) {
    injector_->count_rejection();
    throw IoError(IoErrorKind::kNodeDown, index_);
  }
  if (injector_->roll_transient()) {
    throw IoError(IoErrorKind::kTransient, index_);
  }
}

std::uint64_t IoNode::phys_of(FileId file, std::uint64_t local_offset) {
  auto& segs = segments_[file];
  const std::uint64_t idx = local_offset / kSegmentBytes;
  while (segs.size() <= idx) {
    segs.push_back(next_segment_);
    next_segment_ += kSegmentBytes;
  }
  return segs[idx] + local_offset % kSegmentBytes;
}

simkit::Task<void> IoNode::process(hw::AccessKind kind, hw::NodeId client,
                                   FileId file, std::uint64_t local_offset,
                                   std::uint64_t length) {
  assert(length > 0 &&
         length <= io_.stripe_unit_bytes &&
         "requests must be stripe-unit-bounded (client splits them)");
  // A crashed node rejects at arrival (the client's connection attempt
  // fails fast); a healthy arrival can still die below if the node
  // crashes while the request is queued for the daemon.
  if (injector_ && injector_->node_down(index_)) {
    injector_->count_rejection();
    throw IoError(IoErrorKind::kNodeDown, index_);
  }
  ++served_;
  if (m_requests_) {
    m_requests_->inc();
    m_queue_depth_->record(eng_.now(),
                           static_cast<double>(disk_queue_depth()));
  }
  const simkit::Time t0 = eng_.now();

  // 1. Daemon CPU: strictly serialized per-node, the per-call cost.
  co_await front_.use_for(simkit::milliseconds(io_.server_overhead_ms));
  check_faults();

  const BlockKey key{file, local_offset / io_.stripe_unit_bytes};
  const bool ra_on = io_.server.readahead.enabled;

  if (kind == hw::AccessKind::kRead) {
    const bool hit = cache_->lookup(key);
    if (m_cache_hits_) (hit ? m_cache_hits_ : m_cache_misses_)->inc();
    if (hit) {
      if (ra_on && ra_unused_.erase(key) != 0) {
        ++ra_hits_;
        if (m_ra_hits_) m_ra_hits_->inc();
      }
    } else {
      auto inflight =
          ra_on ? ra_inflight_.find(key) : ra_inflight_.end();
      if (ra_on && inflight != ra_inflight_.end()) {
        // The block's prefetch is already on the disk queue: join it
        // instead of issuing a duplicate disk read.
        auto trig = inflight->second;  // keep alive across the wait
        co_await trig->wait();
        ra_unused_.erase(key);
        ++ra_late_hits_;
        if (m_ra_late_hits_) m_ra_late_hits_->inc();
      } else {
        co_await disk_for(file).serve(phys_of(file, local_offset), length,
                                      hw::AccessKind::kRead);
        ++disk_reads_;
        if (m_disk_reads_) m_disk_reads_->inc();
        // Only a full stripe unit read populates the cache (block-grained).
        if (length == io_.stripe_unit_bytes) cache_->insert(key, false);
      }
    }
    if (ra_on) maybe_readahead(client, file, key.block);
  } else if (io_.write_behind && pool_) {
    if (pool_->is_dirty(key)) {
      // Absorbed into an already-buffered block: refresh the cache entry.
      cache_->insert(key, true);
    } else {
      const std::size_t stalls_before = pool_->stalls();
      co_await pool_->submit({key, local_offset, length});
      if (m_wb_stalls_ && pool_->stalls() != stalls_before) {
        m_wb_stalls_->inc();
      }
      cache_->insert(key, true);
    }
  } else if (io_.write_behind) {
    if (cache_->is_dirty(key)) {
      // Absorbed into an already-dirty block: no new slot, no new flush.
      cache_->insert(key, true);
    } else {
      co_await dirty_slots_.acquire();  // backpressure when flusher lags
      cache_->insert(key, true);
      ++dirty_count_[file];
      eng_.spawn(flush_block(file, local_offset, length, key), "flush");
    }
  } else {
    co_await disk_for(file).serve(phys_of(file, local_offset), length,
                                  hw::AccessKind::kWrite);
    ++disk_writes_;
    if (m_disk_writes_) m_disk_writes_->inc();
    cache_->insert(key, false);
  }
  busy_ += eng_.now() - t0;
}

void IoNode::maybe_readahead(hw::NodeId client, FileId file,
                             std::uint64_t block) {
  const iosrv::RunInfo run = pattern_.note(client, file, block);
  const iosrv::ReadAheadConfig& ra = io_.server.readahead;
  if (run.stride == 0 || run.length < ra.min_run) return;
  for (std::uint32_t i = 1; i <= ra.degree; ++i) {
    if (ra_inflight_count_ >= ra.max_inflight) break;  // the budget
    const std::int64_t next =
        static_cast<std::int64_t>(block) +
        run.stride * static_cast<std::int64_t>(i);
    if (next < 0) break;
    const BlockKey k{file, static_cast<std::uint64_t>(next)};
    if (cache_->contains(k) || ra_inflight_.count(k) != 0) continue;
    ra_inflight_.emplace(k, std::make_shared<simkit::Trigger>());
    ++ra_inflight_count_;
    ++ra_issued_;
    if (m_ra_issued_) m_ra_issued_->inc();
    eng_.spawn(prefetch_block(file, k), "iosrv.ra");
  }
}

simkit::Task<void> IoNode::prefetch_block(FileId file, BlockKey key) {
  const std::uint64_t local_offset = key.block * io_.stripe_unit_bytes;
  co_await disk_for(file).serve(phys_of(file, local_offset),
                                io_.stripe_unit_bytes, hw::AccessKind::kRead);
  ++disk_reads_;
  if (m_disk_reads_) m_disk_reads_->inc();
  if (cache_->insert(key, false)) {
    ra_unused_.insert(key);
  } else {
    // Cache saturated with pinned blocks: the speculative read is lost.
    ++ra_waste_;
    if (m_ra_waste_) m_ra_waste_->inc();
  }
  auto it = ra_inflight_.find(key);
  assert(it != ra_inflight_.end());
  auto trig = it->second;
  ra_inflight_.erase(it);
  --ra_inflight_count_;
  trig->fire(eng_);
}

simkit::Task<void> IoNode::flush_block(FileId file, std::uint64_t local_offset,
                                       std::uint64_t length, BlockKey key) {
  co_await disk_for(file).serve(phys_of(file, local_offset), length,
                                hw::AccessKind::kWrite);
  ++disk_writes_;
  if (m_disk_writes_) m_disk_writes_->inc();
  cache_->mark_clean(key);
  dirty_slots_.release();
  auto it = dirty_count_.find(file);
  if (it != dirty_count_.end() && --it->second == 0) {
    dirty_count_.erase(it);
    auto trig = drain_triggers_.find(file);
    if (trig != drain_triggers_.end()) {
      trig->second->fire(eng_);
      drain_triggers_.erase(trig);
    }
  }
}

simkit::Task<void> IoNode::drain(FileId file) {
  if (pool_) {
    co_await pool_->drain_file(file);
    co_return;
  }
  while (dirty_count_.count(file) != 0) {
    auto& trig = drain_triggers_[file];
    if (!trig) trig = std::make_shared<simkit::Trigger>();
    auto local = trig;  // keep alive across the wait
    co_await local->wait();
  }
}

}  // namespace pfs
