#include "pfs/ionode.hpp"

#include <algorithm>
#include <cassert>

#include "audit/audit.hpp"

namespace pfs {

namespace {
constexpr std::uint64_t cache_blocks(const hw::IoSubsysParams& io) {
  const std::uint64_t blocks =
      io.cache_bytes_per_io_node / io.stripe_unit_bytes;
  return std::max<std::uint64_t>(blocks, 4);
}
}  // namespace

IoNode::IoNode(simkit::Engine& eng, hw::NodeId self, std::size_t index,
               const hw::IoSubsysParams& io, const hw::DiskParams& disk,
               fault::Injector* injector)
    : eng_(eng),
      self_(self),
      index_(index),
      injector_(injector),
      io_(io),
      front_(eng, 1),
      dirty_slots_(eng, cache_blocks(io)),
      cache_(iosrv::make_policy(io.server.policy, cache_blocks(io))) {
  disks_.reserve(io_.disks_per_io_node);
  for (std::uint32_t i = 0; i < io_.disks_per_io_node; ++i) {
    disks_.push_back(
        std::make_unique<DiskArm>(eng, disk, io_.scan_scheduling));
    if (injector_) {
      injector_->attach_disk(index_, i, &disks_.back()->mutable_model());
    }
  }
  if (io_.server.durability.policy == iosrv::DurabilityPolicy::kJournaled) {
    // Classic dedicated-log-device deployment: the redo log never
    // shares an arm with data, so the append per ack stays a sequential
    // stream and journaled's extra disk traffic does not contend with
    // reads or background drains.  Not injector-attached: the log
    // device dies with the node (scrub destroys it), not via the data
    // disks' transient-fault episodes.
    log_disk_ = std::make_unique<DiskArm>(eng, disk, io_.scan_scheduling);
  }
  if (io_.server.writeback.mode == iosrv::WritebackMode::kPool &&
      io_.write_behind) {
    iosrv::WritebackConfig wb = io_.server.writeback;
    if (io_.server.durability.policy == iosrv::DurabilityPolicy::kJournaled) {
      // The pool is the in-memory image of the bounded redo log: a
      // write cannot ack until its journal slot exists, so the log
      // capacity caps the dirty pool.
      const std::uint64_t cap =
          wb.pool_blocks != 0 ? wb.pool_blocks : cache_blocks(io_);
      wb.pool_blocks = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          cap, std::max<std::uint32_t>(io_.server.durability.journal_blocks,
                                       1)));
    }
    pool_ = std::make_unique<iosrv::WritebackPool>(
        eng_, wb, cache_blocks(io_),
        [this](const iosrv::DirtyBlock& b) -> simkit::Task<void> {
          const FileId file = static_cast<FileId>(b.key.file);
          const std::uint64_t ep = crash_epoch_;
          co_await disk_for(file).serve(phys_of(file, b.local_offset),
                                        b.length, hw::AccessKind::kWrite);
          // A crash while this drain write was in flight: the data was
          // in the dead node's memory, the write never landed.  The
          // pool already dropped the block (complete() ignores it).
          if (ep != crash_epoch_) co_return;
          ++disk_writes_;
          if (m_disk_writes_) m_disk_writes_->inc();
          if (m_wb_drained_) m_wb_drained_->inc();
          cache_->mark_clean(b.key);
          if (audit::Ledger* led = audit::current()) {
            led->note_durable(b.key.file, index_, b.key.block);
          }
        });
  }
  if (injector_ && io_.server.durability.crash_semantics) {
    injector_->on_node_crash([this](std::size_t n, bool scrub) {
      if (n == index_) on_crash(scrub);
    });
    injector_->on_node_recovery([this](std::size_t n) {
      if (n == index_) on_recover();
    });
  }
  cache_->set_evict_listener([this](const iosrv::BlockKey& k) {
    if (m_cache_evictions_) m_cache_evictions_->inc();
    if (ra_unused_.erase(k) != 0) {
      ++ra_waste_;
      if (m_ra_waste_) m_ra_waste_->inc();
    }
  });
  if (metrics::Registry* r = metrics::current()) {
    // Cache and disk-op counters aggregate across nodes; the queue-depth
    // timeseries is per node (hot-spotting is a per-node phenomenon).
    const std::string prefix = "pfs.node" + std::to_string(index_) + ".";
    m_requests_ = &r->counter("pfs.requests");
    m_cache_hits_ = &r->counter("pfs.cache.hits");
    m_cache_misses_ = &r->counter("pfs.cache.misses");
    m_cache_evictions_ = &r->counter("pfs.cache.evictions");
    m_disk_reads_ = &r->counter("pfs.disk.reads");
    m_disk_writes_ = &r->counter("pfs.disk.writes");
    if (io_.server.readahead.enabled) {
      m_ra_issued_ = &r->counter("pfs.server.readahead.issued");
      m_ra_hits_ = &r->counter("pfs.server.readahead.hits");
      m_ra_late_hits_ = &r->counter("pfs.server.readahead.late_hits");
      m_ra_waste_ = &r->counter("pfs.server.readahead.waste");
    }
    if (pool_) {
      m_wb_drained_ = &r->counter("pfs.server.writeback.drained");
      m_wb_stalls_ = &r->counter("pfs.server.writeback.stalls");
    }
    if (io_.server.durability.crash_semantics) {
      m_lost_blocks_ = &r->counter("pfs.server.writeback.lost_blocks");
      m_lost_bytes_ = &r->counter("pfs.server.writeback.lost_bytes");
      m_invalidations_ = &r->counter("pfs.server.cache.invalidations");
      if (io_.server.readahead.enabled) {
        m_ra_cancelled_ = &r->counter("pfs.server.readahead.cancelled");
      }
    }
    if (io_.server.durability.policy ==
        iosrv::DurabilityPolicy::kJournaled) {
      m_journal_appends_ = &r->counter("pfs.server.journal.appends");
      m_journal_replayed_ = &r->counter("pfs.server.journal.replayed");
    }
    m_queue_depth_ =
        &r->timeseries(prefix + "queue_depth", /*interval=*/1e-3);
  }
}

std::size_t IoNode::disk_queue_depth() const noexcept {
  std::size_t depth = 0;
  for (const auto& d : disks_) depth += d->queue_length();
  return depth;
}

void IoNode::check_faults() {
  if (!injector_) return;
  if (injector_->node_down(index_)) {
    injector_->count_rejection();
    throw IoError(IoErrorKind::kNodeDown, index_);
  }
  if (injector_->roll_transient()) {
    throw IoError(IoErrorKind::kTransient, index_);
  }
}

std::uint64_t IoNode::phys_of(FileId file, std::uint64_t local_offset) {
  auto& segs = segments_[file];
  const std::uint64_t idx = local_offset / kSegmentBytes;
  while (segs.size() <= idx) {
    segs.push_back(next_segment_);
    next_segment_ += kSegmentBytes;
  }
  return segs[idx] + local_offset % kSegmentBytes;
}

simkit::Task<void> IoNode::process(hw::AccessKind kind, hw::NodeId client,
                                   FileId file, std::uint64_t local_offset,
                                   std::uint64_t length) {
  assert(length > 0 &&
         length <= io_.stripe_unit_bytes &&
         "requests must be stripe-unit-bounded (client splits them)");
  // A crashed node rejects at arrival (the client's connection attempt
  // fails fast); a healthy arrival can still die below if the node
  // crashes while the request is queued for the daemon.
  if (injector_ && injector_->node_down(index_)) {
    injector_->count_rejection();
    throw IoError(IoErrorKind::kNodeDown, index_);
  }
  ++served_;
  if (m_requests_) {
    m_requests_->inc();
    m_queue_depth_->record(eng_.now(),
                           static_cast<double>(disk_queue_depth()));
  }
  const simkit::Time t0 = eng_.now();

  // 1. Daemon CPU: strictly serialized per-node, the per-call cost.
  co_await front_.use_for(simkit::milliseconds(io_.server_overhead_ms));
  check_faults();

  const BlockKey key{file, local_offset / io_.stripe_unit_bytes};
  const bool ra_on = io_.server.readahead.enabled;

  if (kind == hw::AccessKind::kRead) {
    const bool hit = cache_->lookup(key);
    if (m_cache_hits_) (hit ? m_cache_hits_ : m_cache_misses_)->inc();
    if (hit) {
      if (ra_on && ra_unused_.erase(key) != 0) {
        ++ra_hits_;
        if (m_ra_hits_) m_ra_hits_->inc();
      }
    } else {
      auto inflight =
          ra_on ? ra_inflight_.find(key) : ra_inflight_.end();
      if (ra_on && inflight != ra_inflight_.end()) {
        // The block's prefetch is already on the disk queue: join it
        // instead of issuing a duplicate disk read.
        auto trig = inflight->second;  // keep alive across the wait
        co_await trig->wait();
        ra_unused_.erase(key);
        ++ra_late_hits_;
        if (m_ra_late_hits_) m_ra_late_hits_->inc();
      } else {
        co_await disk_for(file).serve(phys_of(file, local_offset), length,
                                      hw::AccessKind::kRead);
        ++disk_reads_;
        if (m_disk_reads_) m_disk_reads_->inc();
        // Only a full stripe unit read populates the cache (block-grained).
        if (length == io_.stripe_unit_bytes) cache_->insert(key, false);
      }
    }
    if (ra_on) maybe_readahead(client, file, key.block);
  } else if (io_.write_behind && pool_ &&
             io_.server.durability.policy !=
                 iosrv::DurabilityPolicy::kWriteThrough) {
    // Every journaled ack pays its redo-log append first — absorbed
    // overwrites included, since each acked write is its own record.
    if (io_.server.durability.policy ==
        iosrv::DurabilityPolicy::kJournaled) {
      co_await journal_append(length);
    }
    if (pool_->is_dirty(key)) {
      // Absorbed into an already-buffered block: refresh the cache entry.
      cache_->insert(key, true);
    } else {
      const std::size_t stalls_before = pool_->stalls();
      co_await pool_->submit({key, local_offset, length});
      if (m_wb_stalls_ && pool_->stalls() != stalls_before) {
        m_wb_stalls_->inc();
      }
      cache_->insert(key, true);
    }
  } else if (io_.write_behind &&
             io_.server.durability.policy !=
                 iosrv::DurabilityPolicy::kWriteThrough) {
    if (io_.server.durability.policy ==
        iosrv::DurabilityPolicy::kJournaled) {
      co_await journal_append(length);
    }
    if (cache_->is_dirty(key)) {
      // Absorbed into an already-dirty block: no new slot, no new flush.
      cache_->insert(key, true);
    } else {
      co_await dirty_slots_.acquire();  // backpressure when flusher lags
      cache_->insert(key, true);
      ++dirty_count_[file];
      eng_.spawn(flush_block(file, local_offset, length, key), "flush");
    }
  } else {
    const simkit::Time w0 = eng_.now();
    co_await disk_for(file).serve(phys_of(file, local_offset), length,
                                  hw::AccessKind::kWrite);
    if (io_.server.durability.policy ==
        iosrv::DurabilityPolicy::kWriteThrough) {
      // The whole in-place write sits between request and ack: that is
      // write_through's per-write durability price.
      durability_wait_ += eng_.now() - w0;
    }
    ++disk_writes_;
    if (m_disk_writes_) m_disk_writes_->inc();
    cache_->insert(key, false);
  }
  busy_ += eng_.now() - t0;
}

void IoNode::maybe_readahead(hw::NodeId client, FileId file,
                             std::uint64_t block) {
  const iosrv::RunInfo run = pattern_.note(client, file, block);
  const iosrv::ReadAheadConfig& ra = io_.server.readahead;
  if (run.stride == 0 || run.length < ra.min_run) return;
  for (std::uint32_t i = 1; i <= ra.degree; ++i) {
    if (ra_inflight_count_ >= ra.max_inflight) break;  // the budget
    const std::int64_t next =
        static_cast<std::int64_t>(block) +
        run.stride * static_cast<std::int64_t>(i);
    if (next < 0) break;
    const BlockKey k{file, static_cast<std::uint64_t>(next)};
    if (cache_->contains(k) || ra_inflight_.count(k) != 0) continue;
    ra_inflight_.emplace(k, std::make_shared<simkit::Trigger>());
    ++ra_inflight_count_;
    ++ra_issued_;
    if (m_ra_issued_) m_ra_issued_->inc();
    eng_.spawn(prefetch_block(file, k), "iosrv.ra");
  }
}

simkit::Task<void> IoNode::prefetch_block(FileId file, BlockKey key) {
  const std::uint64_t local_offset = key.block * io_.stripe_unit_bytes;
  const std::uint64_t ep = crash_epoch_;
  co_await disk_for(file).serve(phys_of(file, local_offset),
                                io_.stripe_unit_bytes, hw::AccessKind::kRead);
  if (ep != crash_epoch_) {
    // The node died while this prefetch was on the disk queue: the data
    // has no cache to land in.  Still wake joiners and release the
    // budget slot — the speculation is cancelled, not leaked.
    ++ra_cancelled_;
    if (m_ra_cancelled_) m_ra_cancelled_->inc();
  } else {
    ++disk_reads_;
    if (m_disk_reads_) m_disk_reads_->inc();
    if (cache_->insert(key, false)) {
      ra_unused_.insert(key);
    } else {
      // Cache saturated with pinned blocks: the speculative read is lost.
      ++ra_waste_;
      if (m_ra_waste_) m_ra_waste_->inc();
    }
  }
  auto it = ra_inflight_.find(key);
  assert(it != ra_inflight_.end());
  auto trig = it->second;
  ra_inflight_.erase(it);
  --ra_inflight_count_;
  trig->fire(eng_);
}

simkit::Task<void> IoNode::flush_block(FileId file, std::uint64_t local_offset,
                                       std::uint64_t length, BlockKey key) {
  const std::uint64_t ep = crash_epoch_;
  co_await disk_for(file).serve(phys_of(file, local_offset), length,
                                hw::AccessKind::kWrite);
  if (ep != crash_epoch_) {
    // The flush was in the dead node's memory: the write never landed
    // (loss accounted at the crash edge).  The slot must still be
    // released — resource accounting survives the crash.
    dirty_slots_.release();
    co_return;
  }
  ++disk_writes_;
  if (m_disk_writes_) m_disk_writes_->inc();
  cache_->mark_clean(key);
  if (audit::Ledger* led = audit::current()) {
    led->note_durable(file, index_, key.block);
  }
  dirty_slots_.release();
  auto it = dirty_count_.find(file);
  if (it != dirty_count_.end() && --it->second == 0) {
    dirty_count_.erase(it);
    auto trig = drain_triggers_.find(file);
    if (trig != drain_triggers_.end()) {
      trig->second->fire(eng_);
      drain_triggers_.erase(trig);
    }
  }
}

simkit::Task<void> IoNode::journal_append(std::uint64_t length) {
  if (!journal_base_set_) {
    // The log arm still carves an 8 MB segment from the shared bump
    // allocator so replay offsets line up, but the appends themselves
    // go to the dedicated spindle — a pure sequential stream.
    journal_base_ = next_segment_;
    next_segment_ += kSegmentBytes;
    journal_base_set_ = true;
  }
  const std::uint64_t off = journal_base_ + journal_head_;
  journal_head_ = (journal_head_ + length) % kSegmentBytes;
  const simkit::Time w0 = eng_.now();
  DiskArm& log = log_disk_ ? *log_disk_ : *disks_[0];
  co_await log.serve(off, length, hw::AccessKind::kWrite);
  // Each append is a log force: the ack waits for the platter, and the
  // commit sector rotates past before the next record can follow it.
  log.mutable_model().note_sync_commit();
  durability_wait_ += eng_.now() - w0;
  ++journal_appends_;
  if (m_journal_appends_) m_journal_appends_->inc();
}

void IoNode::account_loss(const iosrv::LossReport& lr) {
  if (lr.blocks == 0) return;
  const simkit::Time now = eng_.now();
  lost_dirty_blocks_ += lr.blocks;
  lost_bytes_ += lr.bytes;
  if (m_lost_blocks_) m_lost_blocks_->inc(lr.blocks);
  if (m_lost_bytes_) m_lost_bytes_->inc(lr.bytes);
  audit::Ledger* led = audit::current();
  FileId prev = kInvalidFile;
  for (const iosrv::DirtyBlock& b : lr.lost) {  // sorted by (file, block)
    const FileId f = static_cast<FileId>(b.key.file);
    if (f != prev) {
      lost_times_[f].push_back(now);
      prev = f;
    }
    if (led) led->note_lost(b.key.file, index_, b.key.block, b.length);
  }
}

void IoNode::on_crash(bool scrub) {
  ++crash_epoch_;
  last_crash_scrub_ = scrub;
  // Everything resident dies with the node: prefetched-but-unused
  // blocks become waste, the cache comes back cold.
  if (!ra_unused_.empty()) {
    ra_waste_ += ra_unused_.size();
    if (m_ra_waste_) m_ra_waste_->inc(ra_unused_.size());
    ra_unused_.clear();
  }
  const std::size_t legacy_dirty = cache_->invalidate_all();
  (void)legacy_dirty;
  ++cache_invalidations_;
  if (m_invalidations_) m_invalidations_->inc();
  if (pool_) {
    iosrv::LossReport lr = pool_->invalidate_all();
    if (io_.server.durability.policy == iosrv::DurabilityPolicy::kJournaled &&
        !scrub) {
      // The redo log survives a plain crash: acked blocks are parked
      // for deterministic replay at the reboot edge, not lost.
      replay_pending_.insert(replay_pending_.end(), lr.lost.begin(),
                             lr.lost.end());
    } else {
      account_loss(lr);
    }
  } else if (io_.write_behind) {
    // Legacy flushers: every block in dirty_count_ was acked and sat in
    // node memory (queued or in flight) — all of it dies.  Per-block
    // extents are not tracked here; bytes approximate one stripe unit
    // per block.
    const simkit::Time now = eng_.now();
    for (const auto& [f, cnt] : dirty_count_) {
      lost_times_[f].push_back(now);
      lost_dirty_blocks_ += cnt;
      lost_bytes_ += cnt * io_.stripe_unit_bytes;
      if (m_lost_blocks_) m_lost_blocks_->inc(cnt);
      if (m_lost_bytes_) m_lost_bytes_->inc(cnt * io_.stripe_unit_bytes);
    }
  }
  // A scrub destroys the redo log too — anything still waiting for
  // replay (this crash's blocks or a previous one's) is lost after all.
  if (scrub && !replay_pending_.empty()) {
    iosrv::LossReport lr;
    lr.lost = std::move(replay_pending_);
    replay_pending_.clear();
    lr.blocks = lr.lost.size();
    for (const iosrv::DirtyBlock& b : lr.lost) lr.bytes += b.length;
    account_loss(lr);
  }
  // Force-drain waiters on the legacy path wake with nothing pending.
  dirty_count_.clear();
  for (auto& [f, trig] : drain_triggers_) trig->fire(eng_);
  drain_triggers_.clear();
  if (scrub) {
    if (audit::Ledger* led = audit::current()) led->note_scrubbed(index_);
  }
}

void IoNode::on_recover() {
  if (replay_pending_.empty()) return;
  std::vector<iosrv::DirtyBlock> blocks;
  blocks.swap(replay_pending_);
  eng_.spawn(replay_journal(std::move(blocks)), "iosrv.replay");
}

simkit::Task<void> IoNode::replay_journal(
    std::vector<iosrv::DirtyBlock> blocks) {
  const std::uint64_t ep = crash_epoch_;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (ep != crash_epoch_) {
      // Crashed again mid-replay.  A plain re-crash keeps the log: the
      // remainder replays at the next reboot.  A scrub destroyed it.
      std::vector<iosrv::DirtyBlock> rest(blocks.begin() + i, blocks.end());
      if (last_crash_scrub_) {
        iosrv::LossReport lr;
        lr.lost = std::move(rest);
        lr.blocks = lr.lost.size();
        for (const iosrv::DirtyBlock& b : lr.lost) lr.bytes += b.length;
        account_loss(lr);
      } else {
        replay_pending_.insert(replay_pending_.end(), rest.begin(),
                               rest.end());
      }
      co_return;
    }
    const iosrv::DirtyBlock& b = blocks[i];
    const FileId file = static_cast<FileId>(b.key.file);
    co_await disk_for(file).serve(phys_of(file, b.local_offset), b.length,
                                  hw::AccessKind::kWrite);
    ++disk_writes_;
    if (m_disk_writes_) m_disk_writes_->inc();
    ++journal_replayed_;
    if (m_journal_replayed_) m_journal_replayed_->inc();
  }
}

bool IoNode::file_lost_in(FileId file, simkit::Time t0,
                          simkit::Time t1) const {
  auto it = lost_times_.find(file);
  if (it == lost_times_.end()) return false;
  for (const simkit::Time t : it->second) {
    if (t0 < t && t <= t1) return true;
  }
  return false;
}

simkit::Task<void> IoNode::drain(FileId file) {
  // A drain barrier (fsync or close) is client-visible wait under every
  // policy; how often a policy forces one is part of its price.
  const simkit::Time w0 = eng_.now();
  if (pool_) {
    co_await pool_->drain_file(file);
    durability_wait_ += eng_.now() - w0;
    co_return;
  }
  while (dirty_count_.count(file) != 0) {
    auto& trig = drain_triggers_[file];
    if (!trig) trig = std::make_shared<simkit::Trigger>();
    auto local = trig;  // keep alive across the wait
    co_await local->wait();
  }
  durability_wait_ += eng_.now() - w0;
}

}  // namespace pfs
