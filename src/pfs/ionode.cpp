#include "pfs/ionode.hpp"

#include <algorithm>
#include <cassert>

namespace pfs {

namespace {
constexpr std::uint64_t cache_blocks(const hw::IoSubsysParams& io) {
  const std::uint64_t blocks =
      io.cache_bytes_per_io_node / io.stripe_unit_bytes;
  return std::max<std::uint64_t>(blocks, 4);
}
}  // namespace

IoNode::IoNode(simkit::Engine& eng, hw::NodeId self, std::size_t index,
               const hw::IoSubsysParams& io, const hw::DiskParams& disk,
               fault::Injector* injector)
    : eng_(eng),
      self_(self),
      index_(index),
      injector_(injector),
      io_(io),
      front_(eng, 1),
      dirty_slots_(eng, cache_blocks(io)),
      cache_(cache_blocks(io)) {
  disks_.reserve(io_.disks_per_io_node);
  for (std::uint32_t i = 0; i < io_.disks_per_io_node; ++i) {
    disks_.push_back(
        std::make_unique<DiskArm>(eng, disk, io_.scan_scheduling));
    if (injector_) {
      injector_->attach_disk(index_, i, &disks_.back()->mutable_model());
    }
  }
  if (metrics::Registry* r = metrics::current()) {
    // Cache and disk-op counters aggregate across nodes; the queue-depth
    // timeseries is per node (hot-spotting is a per-node phenomenon).
    const std::string prefix = "pfs.node" + std::to_string(index_) + ".";
    m_requests_ = &r->counter("pfs.requests");
    m_cache_hits_ = &r->counter("pfs.cache.hits");
    m_cache_misses_ = &r->counter("pfs.cache.misses");
    m_disk_reads_ = &r->counter("pfs.disk.reads");
    m_disk_writes_ = &r->counter("pfs.disk.writes");
    m_queue_depth_ =
        &r->timeseries(prefix + "queue_depth", /*interval=*/1e-3);
  }
}

std::size_t IoNode::disk_queue_depth() const noexcept {
  std::size_t depth = 0;
  for (const auto& d : disks_) depth += d->queue_length();
  return depth;
}

void IoNode::check_faults() {
  if (!injector_) return;
  if (injector_->node_down(index_)) {
    injector_->count_rejection();
    throw IoError(IoErrorKind::kNodeDown, index_);
  }
  if (injector_->roll_transient()) {
    throw IoError(IoErrorKind::kTransient, index_);
  }
}

std::uint64_t IoNode::phys_of(FileId file, std::uint64_t local_offset) {
  auto& segs = segments_[file];
  const std::uint64_t idx = local_offset / kSegmentBytes;
  while (segs.size() <= idx) {
    segs.push_back(next_segment_);
    next_segment_ += kSegmentBytes;
  }
  return segs[idx] + local_offset % kSegmentBytes;
}

simkit::Task<void> IoNode::process(hw::AccessKind kind, FileId file,
                                   std::uint64_t local_offset,
                                   std::uint64_t length) {
  assert(length > 0 &&
         length <= io_.stripe_unit_bytes &&
         "requests must be stripe-unit-bounded (client splits them)");
  // A crashed node rejects at arrival (the client's connection attempt
  // fails fast); a healthy arrival can still die below if the node
  // crashes while the request is queued for the daemon.
  if (injector_ && injector_->node_down(index_)) {
    injector_->count_rejection();
    throw IoError(IoErrorKind::kNodeDown, index_);
  }
  ++served_;
  if (m_requests_) {
    m_requests_->inc();
    m_queue_depth_->record(eng_.now(),
                           static_cast<double>(disk_queue_depth()));
  }
  const simkit::Time t0 = eng_.now();

  // 1. Daemon CPU: strictly serialized per-node, the per-call cost.
  co_await front_.use_for(simkit::milliseconds(io_.server_overhead_ms));
  check_faults();

  const BlockKey key{file, local_offset / io_.stripe_unit_bytes};

  if (kind == hw::AccessKind::kRead) {
    const bool hit = cache_.lookup(key);
    if (m_cache_hits_) (hit ? m_cache_hits_ : m_cache_misses_)->inc();
    if (!hit) {
      co_await disk_for(file).serve(phys_of(file, local_offset), length,
                                    hw::AccessKind::kRead);
      ++disk_reads_;
      if (m_disk_reads_) m_disk_reads_->inc();
      // Only a full stripe unit read populates the cache (block-grained).
      if (length == io_.stripe_unit_bytes) cache_.insert(key, false);
    }
  } else if (io_.write_behind) {
    if (cache_.is_dirty(key)) {
      // Absorbed into an already-dirty block: no new slot, no new flush.
      cache_.insert(key, true);
    } else {
      co_await dirty_slots_.acquire();  // backpressure when flusher lags
      cache_.insert(key, true);
      ++dirty_count_[file];
      eng_.spawn(flush_block(file, local_offset, length, key), "flush");
    }
  } else {
    co_await disk_for(file).serve(phys_of(file, local_offset), length,
                                  hw::AccessKind::kWrite);
    ++disk_writes_;
    if (m_disk_writes_) m_disk_writes_->inc();
    cache_.insert(key, false);
  }
  busy_ += eng_.now() - t0;
}

simkit::Task<void> IoNode::flush_block(FileId file, std::uint64_t local_offset,
                                       std::uint64_t length, BlockKey key) {
  co_await disk_for(file).serve(phys_of(file, local_offset), length,
                                hw::AccessKind::kWrite);
  ++disk_writes_;
  if (m_disk_writes_) m_disk_writes_->inc();
  cache_.mark_clean(key);
  dirty_slots_.release();
  auto it = dirty_count_.find(file);
  if (it != dirty_count_.end() && --it->second == 0) {
    dirty_count_.erase(it);
    auto trig = drain_triggers_.find(file);
    if (trig != drain_triggers_.end()) {
      trig->second->fire(eng_);
      drain_triggers_.erase(trig);
    }
  }
}

simkit::Task<void> IoNode::drain(FileId file) {
  while (dirty_count_.count(file) != 0) {
    auto& trig = drain_triggers_[file];
    if (!trig) trig = std::make_shared<simkit::Trigger>();
    auto local = trig;  // keep alive across the wait
    co_await local->wait();
  }
}

}  // namespace pfs
