// pfs/ionode.hpp — one I/O node: daemon front-end, disks, cache, flusher.
//
// Service model (per request, all FIFO):
//   1. front-end daemon CPU: a unit resource held for server_overhead_ms —
//      this is the per-call software cost that dominates unoptimized I/O
//      in the paper (the more calls, the worse),
//   2. block cache lookup (pluggable iosrv::CachePolicy — LRU by
//      default, ARC for scan-resistant shared servers),
//   3. on miss / synchronous write: the owning disk arm is acquired and a
//      mechanical DiskModel prices the access (stateful head position, so
//      interleaved far-apart requests pay seeks),
//   4. write-behind (Paragon): writes complete once a dirty-cache slot is
//      taken; a spawned flush process writes the block out asynchronously.
//      With iosrv::WritebackMode::kPool the per-write flusher is replaced
//      by a bounded dirty pool drained between watermarks.
//
// With read-ahead enabled (iosrv::ReadAheadConfig) the node watches each
// (client, file) stream for constant-stride runs and prefetches ahead of
// them under an in-flight budget — the ViPIOS-style "smart server" the
// related-work papers argue for.  All iosrv features default off; the
// default node is byte-identical to the pre-iosrv passive server.
//
// Crash semantics (iosrv::DurabilityConfig, default OFF): when enabled
// and a fault::Injector crash hits this node, the volatile state dies
// with it — the block cache and writeback pool are invalidated,
// in-flight drains and prefetches are cancelled (epoch check), and
// acked-but-unflushed blocks become lost updates reported to the
// audit:: ledger and the loss counters.  The DurabilityPolicy decides
// what an ack promised: write_through pays the disk before acking,
// ordered_drain keeps write-behind speed but honors fsync barriers,
// journaled pays a sequential redo-log append per write and replays
// the log on recovery after a plain (non-scrub) crash.
//
// There are no eternal server loops: every piece of work is a finite
// coroutine, so a simulation drains exactly when all I/O (including
// background flushes and prefetches) has completed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/injector.hpp"
#include "hw/disk.hpp"
#include "hw/machine.hpp"
#include "iosrv/cache_policy.hpp"
#include "iosrv/pattern.hpp"
#include "iosrv/writeback.hpp"
#include "metrics/metrics.hpp"
#include "pfs/cache.hpp"
#include "pfs/diskarm.hpp"
#include "pfs/types.hpp"
#include "simkit/engine.hpp"
#include "simkit/resource.hpp"
#include "simkit/trigger.hpp"

namespace pfs {

class IoNode {
 public:
  /// `index` is the node's position in the machine's I/O partition (the
  /// identity fault plans refer to); `injector` may be null (no faults).
  IoNode(simkit::Engine& eng, hw::NodeId self, std::size_t index,
         const hw::IoSubsysParams& io, const hw::DiskParams& disk,
         fault::Injector* injector = nullptr);

  hw::NodeId node_id() const noexcept { return self_; }
  std::size_t index() const noexcept { return index_; }

  /// Full server-side handling of one stripe-unit-bounded request.
  /// `client` identifies the requesting compute node — the pattern
  /// tracker keys its streams by (client, file).
  simkit::Task<void> process(hw::AccessKind kind, hw::NodeId client,
                             FileId file, std::uint64_t local_offset,
                             std::uint64_t length);

  /// Wait until all dirty blocks of `file` on this node have been flushed.
  simkit::Task<void> drain(FileId file);

  // -- statistics ---------------------------------------------------------
  std::uint64_t requests_served() const noexcept { return served_; }
  std::uint64_t disk_reads() const noexcept { return disk_reads_; }
  std::uint64_t disk_writes() const noexcept { return disk_writes_; }
  const iosrv::CachePolicy& cache() const noexcept { return *cache_; }
  simkit::Duration busy_time() const noexcept { return busy_; }
  /// Total requests queued at this node's disks right now (the paper's
  /// contention measure).
  std::size_t disk_queue_depth() const noexcept;

  // Read-ahead accounting (all zero unless readahead.enabled).
  std::uint64_t readahead_issued() const noexcept { return ra_issued_; }
  /// Demand hits on a completed, not-yet-referenced prefetched block.
  std::uint64_t readahead_hits() const noexcept { return ra_hits_; }
  /// Demand reads that found their block's prefetch still in flight and
  /// waited for it instead of issuing a second disk read.
  std::uint64_t readahead_late_hits() const noexcept { return ra_late_hits_; }
  /// Prefetched blocks evicted (or dropped) without ever being used.
  std::uint64_t readahead_waste() const noexcept { return ra_waste_; }

  /// Dirty-pool stats; null in legacy write-behind mode.
  const iosrv::WritebackPool* writeback_pool() const noexcept {
    return pool_.get();
  }

  // Crash-semantics accounting (all zero unless durability.crash_semantics).
  /// Acked-but-unflushed blocks destroyed by crashes on this node.
  std::uint64_t lost_dirty_blocks() const noexcept {
    return lost_dirty_blocks_;
  }
  std::uint64_t lost_bytes() const noexcept { return lost_bytes_; }
  /// In-flight prefetches whose node died under them.
  std::uint64_t readahead_cancelled() const noexcept { return ra_cancelled_; }
  /// Crash invalidations of the block cache (cold re-entry events).
  std::uint64_t cache_invalidations() const noexcept {
    return cache_invalidations_;
  }
  std::uint64_t journal_appends() const noexcept { return journal_appends_; }
  std::uint64_t journal_replayed() const noexcept { return journal_replayed_; }
  /// Client-visible time spent blocked on durable-ack machinery: the
  /// synchronous in-place write under write_through, the redo-log
  /// append under journaled, and drain barriers (fsync/close) under
  /// every policy.  This is "what the durability contract costs", kept
  /// separate from makespan so queueing noise cannot hide the price.
  simkit::Duration durability_wait() const noexcept {
    return durability_wait_;
  }

  /// Did a crash destroy acked-but-unflushed data of `file` on this node
  /// in (t0, t1]?  The writeback-loss analogue of
  /// fault::Injector::node_scrubbed_in — checkpoint validity chains are
  /// truncated by either.
  bool file_lost_in(FileId file, simkit::Time t0, simkit::Time t1) const;

 private:
  // One file's per-node data lives on one local disk (PIOFS servers kept
  // each file in a local AIX file system); distinct files spread across
  // the node's disks.  This keeps a single shared file from enjoying
  // intra-node striping the real system didn't provide.
  DiskArm& disk_for(FileId file) { return *disks_[file % disks_.size()]; }

  /// Physical placement: server-local file offsets are mapped onto the
  /// disk through 8 MB segments from a bump allocator, so files are
  /// near-contiguous locally and distinct files live far apart.
  std::uint64_t phys_of(FileId file, std::uint64_t local_offset);

  simkit::Task<void> flush_block(FileId file, std::uint64_t local_offset,
                                 std::uint64_t length, BlockKey key);

  /// Feed the pattern tracker and launch prefetches along a detected run.
  void maybe_readahead(hw::NodeId client, FileId file, std::uint64_t block);
  simkit::Task<void> prefetch_block(FileId file, BlockKey key);

  static constexpr std::uint64_t kSegmentBytes = 8ULL << 20;

  /// Fail the request if the node is crashed or a transient error fires.
  void check_faults();

  // -- crash semantics (no-ops unless durability.crash_semantics) --------
  /// Power-loss at the crash edge: invalidate cache and pool, account
  /// lost updates (or park them for journal replay), cancel drains.
  void on_crash(bool scrub);
  /// Reboot edge: replay the surviving redo log, if any.
  void on_recover();
  void account_loss(const iosrv::LossReport& lr);
  simkit::Task<void> replay_journal(std::vector<iosrv::DirtyBlock> blocks);
  /// Sequential redo-log append on the dedicated log arm — the
  /// per-write durability price of DurabilityPolicy::kJournaled.
  simkit::Task<void> journal_append(std::uint64_t length);

  simkit::Engine& eng_;
  hw::NodeId self_;
  std::size_t index_;
  fault::Injector* injector_;
  hw::IoSubsysParams io_;
  simkit::Resource front_;        // daemon CPU (capacity 1)
  simkit::Resource dirty_slots_;  // legacy write-behind backpressure
  std::vector<std::unique_ptr<DiskArm>> disks_;
  // Dedicated redo-log spindle (kJournaled only): appends are strictly
  // sequential, so giving the log its own arm keeps them at streaming
  // cost instead of doubling the seek traffic on the data disks.
  std::unique_ptr<DiskArm> log_disk_;
  std::unique_ptr<iosrv::CachePolicy> cache_;
  iosrv::PatternTracker pattern_;
  std::unique_ptr<iosrv::WritebackPool> pool_;  // null in legacy mode
  std::map<FileId, std::vector<std::uint64_t>> segments_;
  std::uint64_t next_segment_ = 0;

  std::map<FileId, std::uint64_t> dirty_count_;
  std::map<FileId, std::shared_ptr<simkit::Trigger>> drain_triggers_;

  // Prefetched-but-unreferenced residents (hit/waste accounting) and
  // prefetches still on the disk queue (late-hit joining).
  std::unordered_set<BlockKey, BlockKeyHash> ra_unused_;
  std::unordered_map<BlockKey, std::shared_ptr<simkit::Trigger>,
                     BlockKeyHash>
      ra_inflight_;
  std::uint32_t ra_inflight_count_ = 0;

  // Crash-semantics state.  crash_epoch_ bumps at every crash edge;
  // coroutines that straddle a crash (drain writes, prefetches, legacy
  // flushes, journal replay) capture it before their disk access and
  // treat a mismatch afterwards as "this work died with the node".
  std::uint64_t crash_epoch_ = 0;
  bool last_crash_scrub_ = false;
  std::vector<iosrv::DirtyBlock> replay_pending_;  // surviving redo log
  std::map<FileId, std::vector<simkit::Time>> lost_times_;
  std::uint64_t journal_base_ = 0;
  bool journal_base_set_ = false;
  std::uint64_t journal_head_ = 0;

  std::uint64_t served_ = 0;
  std::uint64_t disk_reads_ = 0;
  std::uint64_t disk_writes_ = 0;
  std::uint64_t ra_issued_ = 0;
  std::uint64_t ra_hits_ = 0;
  std::uint64_t ra_late_hits_ = 0;
  std::uint64_t ra_waste_ = 0;
  std::uint64_t ra_cancelled_ = 0;
  std::uint64_t lost_dirty_blocks_ = 0;
  std::uint64_t lost_bytes_ = 0;
  std::uint64_t cache_invalidations_ = 0;
  std::uint64_t journal_appends_ = 0;
  std::uint64_t journal_replayed_ = 0;
  simkit::Duration durability_wait_ = 0.0;
  simkit::Duration busy_ = 0.0;

  // Instrument handles from the registry installed at construction; all
  // null when metrics are off (the default).  Feature-specific handles
  // stay null when the feature is off so the legacy metrics surface is
  // unchanged.
  metrics::Counter* m_requests_ = nullptr;
  metrics::Counter* m_cache_hits_ = nullptr;
  metrics::Counter* m_cache_misses_ = nullptr;
  metrics::Counter* m_cache_evictions_ = nullptr;
  metrics::Counter* m_disk_reads_ = nullptr;
  metrics::Counter* m_disk_writes_ = nullptr;
  metrics::Counter* m_ra_issued_ = nullptr;
  metrics::Counter* m_ra_hits_ = nullptr;
  metrics::Counter* m_ra_late_hits_ = nullptr;
  metrics::Counter* m_ra_waste_ = nullptr;
  metrics::Counter* m_wb_drained_ = nullptr;
  metrics::Counter* m_wb_stalls_ = nullptr;
  metrics::Counter* m_lost_blocks_ = nullptr;
  metrics::Counter* m_lost_bytes_ = nullptr;
  metrics::Counter* m_invalidations_ = nullptr;
  metrics::Counter* m_ra_cancelled_ = nullptr;
  metrics::Counter* m_journal_appends_ = nullptr;
  metrics::Counter* m_journal_replayed_ = nullptr;
  metrics::Timeseries* m_queue_depth_ = nullptr;
};

}  // namespace pfs
