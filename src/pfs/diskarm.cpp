#include "pfs/diskarm.hpp"

#include <algorithm>
#include <limits>

namespace pfs {

DiskArm::DiskArm(simkit::Engine& eng, const hw::DiskParams& params,
                 bool scan)
    : eng_(eng), model_(params), scan_(scan) {
  // Disk-arm instruments aggregate over all arms in the simulation — the
  // paper's seek-vs-transfer argument is machine-wide, not per-spindle.
  if (metrics::Registry* r = metrics::current()) {
    m_seeks_ = &r->counter("pfs.disk.seeks");
    m_seek_s_ = &r->histogram("pfs.disk.seek_s");
    m_transfer_s_ = &r->histogram("pfs.disk.transfer_s");
    m_queue_wait_s_ = &r->histogram("pfs.disk.queue_wait_s");
  }
}

simkit::Task<void> DiskArm::serve(std::uint64_t phys, std::uint64_t len,
                                  hw::AccessKind kind) {
  const simkit::Time t_arrive = eng_.now();
  co_await Acquire{*this, phys};
  hw::AccessBreakdown bd;
  const simkit::Duration t =
      model_.access(phys, len, kind, m_seek_s_ ? &bd : nullptr);
  ++services_;
  if (m_seek_s_) {
    m_queue_wait_s_->observe(eng_.now() - t_arrive);
    m_transfer_s_->observe(bd.transfer);
    if (bd.seek > 0.0) {
      m_seeks_->inc();
      m_seek_s_->observe(bd.seek);
    }
  }
  co_await eng_.delay(t);
  release();
}

std::size_t DiskArm::pick_next() const {
  if (!scan_) {
    // FIFO: oldest arrival.
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      if (queue_[i].seq < queue_[best].seq) best = i;
    }
    return best;
  }
  // SCAN: nearest request at/above the head in the sweep direction;
  // reverse at the edge.
  const std::uint64_t head = model_.head_position();
  std::size_t best = queue_.size();
  if (sweep_up_) {
    std::uint64_t best_pos = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i].phys >= head && queue_[i].phys < best_pos) {
        best_pos = queue_[i].phys;
        best = i;
      }
    }
    if (best != queue_.size()) return best;
    // Edge: reverse — farthest-down request first (sweep back).
    std::uint64_t max_pos = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i].phys >= max_pos) {  // >=: pick something even at 0
        max_pos = queue_[i].phys;
        best = i;
      }
    }
    return best;
  }
  std::uint64_t best_pos = 0;
  bool found = false;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].phys <= head &&
        (!found || queue_[i].phys > best_pos)) {
      best_pos = queue_[i].phys;
      best = i;
      found = true;
    }
  }
  if (found) return best;
  std::uint64_t min_pos = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].phys <= min_pos) {
      min_pos = queue_[i].phys;
      best = i;
    }
  }
  return best;
}

void DiskArm::release() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  if (scan_) {
    // Direction bookkeeping: flip when no request remains ahead.
    const std::uint64_t head = model_.head_position();
    const bool any_up = std::any_of(queue_.begin(), queue_.end(),
                                    [&](const Waiter& w) {
                                      return w.phys >= head;
                                    });
    const bool any_down = std::any_of(queue_.begin(), queue_.end(),
                                      [&](const Waiter& w) {
                                        return w.phys <= head;
                                      });
    if (sweep_up_ && !any_up && any_down) sweep_up_ = false;
    if (!sweep_up_ && !any_down && any_up) sweep_up_ = true;
  }
  const std::size_t next = pick_next();
  const auto h = queue_[next].h;
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(next));
  eng_.schedule_at(eng_.now(), h);
}

}  // namespace pfs
