// pfs/layout.hpp — round-robin striping geometry.
//
// PFS (Paragon) and PIOFS (SP-2) both stripe files across I/O nodes in
// fixed-size units (64 KB stripe unit / 32 KB BSU) in round-robin order.
// StripeMap is pure geometry: it splits a byte range into per-server
// pieces and computes each piece's server-local offset (the concatenation
// of that server's stripes forms its local file).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace pfs {

struct StripePiece {
  std::uint32_t server;        // which I/O node (0..nservers-1)
  std::uint64_t local_offset;  // offset within that server's local file
  std::uint64_t file_offset;   // offset within the logical file
  std::uint64_t length;        // piece length (never crosses a stripe unit)
};

class StripeMap {
 public:
  StripeMap(std::uint64_t stripe_unit, std::uint32_t nservers,
            std::uint32_t first_server = 0)
      : su_(stripe_unit), n_(nservers), first_(first_server) {
    assert(stripe_unit > 0 && nservers > 0);
  }

  /// Placement-restricted map: stripes rotate over `servers` (distinct I/O
  /// node indices) instead of the full partition.  This is how files are
  /// pinned to a failure domain — a domain-aware replica lists the nodes
  /// of a different rack than its primary.
  StripeMap(std::uint64_t stripe_unit, std::vector<std::uint32_t> servers,
            std::uint32_t first_server = 0)
      : su_(stripe_unit),
        n_(static_cast<std::uint32_t>(servers.size())),
        first_(first_server),
        servers_(std::move(servers)) {
    assert(stripe_unit > 0 && n_ > 0);
  }

  std::uint64_t stripe_unit() const noexcept { return su_; }
  std::uint32_t servers() const noexcept { return n_; }

  /// The distinct servers this map touches, in rotation-slot order.
  std::vector<std::uint32_t> server_list() const {
    if (!servers_.empty()) return servers_;
    std::vector<std::uint32_t> all(n_);
    for (std::uint32_t i = 0; i < n_; ++i) all[i] = i;
    return all;
  }

  std::uint32_t server_of(std::uint64_t offset) const noexcept {
    const auto slot =
        static_cast<std::uint32_t>((offset / su_ + first_) % n_);
    return servers_.empty() ? slot : servers_[slot];
  }

  std::uint64_t local_offset_of(std::uint64_t offset) const noexcept {
    const std::uint64_t stripe = offset / su_;
    return (stripe / n_) * su_ + offset % su_;
  }

  /// Split [offset, offset+length) into stripe-unit-bounded pieces.
  std::vector<StripePiece> split(std::uint64_t offset,
                                 std::uint64_t length) const {
    std::vector<StripePiece> out;
    if (length == 0) return out;
    out.reserve(length / su_ + 2);
    std::uint64_t pos = offset;
    std::uint64_t remaining = length;
    while (remaining > 0) {
      const std::uint64_t within = pos % su_;
      const std::uint64_t take = std::min(remaining, su_ - within);
      out.push_back(StripePiece{server_of(pos), local_offset_of(pos), pos,
                                take});
      pos += take;
      remaining -= take;
    }
    return out;
  }

 private:
  std::uint64_t su_;
  std::uint32_t n_;
  std::uint32_t first_;
  std::vector<std::uint32_t> servers_;  // empty = identity (0..n_-1)
};

}  // namespace pfs
