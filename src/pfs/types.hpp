// pfs/types.hpp — shared vocabulary for the parallel file system.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "simkit/time.hpp"

namespace pfs {

using FileId = std::uint32_t;
inline constexpr FileId kInvalidFile = ~FileId{0};

/// Why an I/O request failed (injected by fault::Injector).
enum class IoErrorKind : std::uint8_t {
  kTransient,  // dropped request; an immediate retry may succeed
  kNodeDown,   // fail-stop crash; fails until the node reboots
};

constexpr std::string_view to_string(IoErrorKind k) {
  return k == IoErrorKind::kTransient ? "transient" : "node-down";
}

/// Typed failure surfaced by the I/O stack when fault injection is armed.
/// Propagates through the coroutine chain to whoever awaits the request;
/// pario's retry/backoff policy decides recovery.
class IoError : public std::runtime_error {
 public:
  IoError(IoErrorKind kind, std::size_t io_node_index)
      : std::runtime_error("io error (" + std::string(to_string(kind)) +
                           ") at io node " + std::to_string(io_node_index)),
        kind_(kind),
        io_node_(io_node_index) {}

  IoErrorKind kind() const noexcept { return kind_; }
  std::size_t io_node() const noexcept { return io_node_; }

 private:
  IoErrorKind kind_;
  std::size_t io_node_;
};

/// The operation kinds the Pablo-style tracer distinguishes — exactly the
/// rows of the paper's Tables 2 and 3.
enum class OpKind : std::uint8_t {
  kOpen = 0,
  kRead,
  kSeek,
  kWrite,
  kFlush,
  kClose,
  kCount  // sentinel
};

constexpr std::string_view to_string(OpKind k) {
  switch (k) {
    case OpKind::kOpen:  return "Open";
    case OpKind::kRead:  return "Read";
    case OpKind::kSeek:  return "Seek";
    case OpKind::kWrite: return "Write";
    case OpKind::kFlush: return "Flush";
    case OpKind::kClose: return "Close";
    case OpKind::kCount: break;
  }
  return "?";
}

/// Observer hook for I/O tracing (implemented by trace::IoTracer).  The
/// file system reports every client-visible operation through this.
class IoObserver {
 public:
  virtual ~IoObserver() = default;
  virtual void record(OpKind kind, simkit::Time start, simkit::Duration dur,
                      std::uint64_t bytes) = 0;
};

}  // namespace pfs
