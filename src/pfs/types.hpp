// pfs/types.hpp — shared vocabulary for the parallel file system.
#pragma once

#include <cstdint>
#include <string_view>

#include "simkit/time.hpp"

namespace pfs {

using FileId = std::uint32_t;
inline constexpr FileId kInvalidFile = ~FileId{0};

/// The operation kinds the Pablo-style tracer distinguishes — exactly the
/// rows of the paper's Tables 2 and 3.
enum class OpKind : std::uint8_t {
  kOpen = 0,
  kRead,
  kSeek,
  kWrite,
  kFlush,
  kClose,
  kCount  // sentinel
};

constexpr std::string_view to_string(OpKind k) {
  switch (k) {
    case OpKind::kOpen:  return "Open";
    case OpKind::kRead:  return "Read";
    case OpKind::kSeek:  return "Seek";
    case OpKind::kWrite: return "Write";
    case OpKind::kFlush: return "Flush";
    case OpKind::kClose: return "Close";
    case OpKind::kCount: break;
  }
  return "?";
}

/// Observer hook for I/O tracing (implemented by trace::IoTracer).  The
/// file system reports every client-visible operation through this.
class IoObserver {
 public:
  virtual ~IoObserver() = default;
  virtual void record(OpKind kind, simkit::Time start, simkit::Duration dur,
                      std::uint64_t bytes) = 0;
};

}  // namespace pfs
