#include "pfs/modes.hpp"

#include <cassert>
#include <map>

#include "simkit/trigger.hpp"

namespace pfs {
namespace {

/// Per-turn wakeups for the strict-rank-order (kSync) mode.
struct SyncWaiters {
  std::map<std::uint64_t, simkit::Trigger> turns;
};

}  // namespace

// The kSync turn triggers live beside the state in the rendezvous object;
// to keep the header light they are stored in a side map keyed by state.
// thread_local because the scenario runner executes independent
// simulations concurrently — states never cross threads.
namespace {
std::map<const SharedFileState*, SyncWaiters>& sync_waiters() {
  static thread_local std::map<const SharedFileState*, SyncWaiters> m;
  return m;
}
}  // namespace

simkit::Task<SharedFile> SharedFile::open(mprt::Comm& comm, StripedFs& fs,
                                          FileId file, IoMode mode,
                                          std::uint64_t record_size,
                                          IoObserver* observer) {
  assert(mode != IoMode::kRecord || record_size > 0);
  // Agree on a rendezvous key (tags advance in SPMD lock-step), deposit
  // the shared state at rank 0, and synchronize twice: once so everyone
  // sees the deposit, once so rank 0 may clean the board.
  const int key = comm.next_collective_tag();
  auto& board = comm.cluster().rendezvous();
  if (comm.rank() == 0) {
    board[key] = std::make_shared<SharedFileState>(
        comm.engine(), file, mode, record_size, comm.size());
  }
  co_await mprt::barrier(comm);
  auto state = std::static_pointer_cast<SharedFileState>(board.at(key));
  co_await mprt::barrier(comm);
  if (comm.rank() == 0) board.erase(key);

  // Every rank performs the (timed) file-system open.
  (void)co_await fs.open(comm.node(), file, nullptr);
  co_return SharedFile(comm, fs, std::move(state), observer);
}

simkit::Task<std::uint64_t> SharedFile::log_op(hw::AccessKind kind,
                                               std::uint64_t len,
                                               std::span<std::byte> out,
                                               std::span<const std::byte> in) {
  SharedFileState& st = *state_;
  // Token round trip to the file's metadata server: the shared pointer is
  // a distributed object, and every M_LOG access pays for it.
  auto& net = comm_->machine().network();
  const hw::NodeId meta =
      fs_->io_node(fs_->stripe_map(st.file_).server_of(0)).node_id();
  co_await st.token_.acquire();
  co_await net.transfer(comm_->node(), meta, StripedFs::kHeaderBytes);
  co_await net.transfer(meta, comm_->node(), StripedFs::kHeaderBytes);
  const std::uint64_t at = st.shared_pos_;
  st.shared_pos_ += len;
  // Atomic-append semantics: the token is held across the access.
  if (kind == hw::AccessKind::kRead) {
    co_await fs_->pread(comm_->node(), st.file_, at, len, out);
  } else {
    co_await fs_->pwrite(comm_->node(), st.file_, at, len, in);
  }
  st.token_.release();
  co_return at;
}

simkit::Task<std::uint64_t> SharedFile::sync_op(hw::AccessKind kind,
                                                std::uint64_t len,
                                                std::span<std::byte> out,
                                                std::span<const std::byte> in) {
  SharedFileState& st = *state_;
  auto& waiters = sync_waiters()[&st];
  // Global turn t serves rank (t % P)'s (t / P)-th operation.
  const std::uint64_t my_turn =
      my_ops_ * static_cast<std::uint64_t>(st.nprocs_) +
      static_cast<std::uint64_t>(comm_->rank());
  if (st.sync_round_ != my_turn) {
    co_await waiters.turns[my_turn].wait();
  }
  const std::uint64_t at = st.shared_pos_;
  st.shared_pos_ += len;
  if (kind == hw::AccessKind::kRead) {
    co_await fs_->pread(comm_->node(), st.file_, at, len, out);
  } else {
    co_await fs_->pwrite(comm_->node(), st.file_, at, len, in);
  }
  // Advance the global turn and wake its owner, if already waiting.
  ++st.sync_round_;
  auto it = waiters.turns.find(st.sync_round_);
  if (it != waiters.turns.end()) it->second.fire(comm_->engine());
  waiters.turns.erase(my_turn);
  co_return at;
}

simkit::Task<std::uint64_t> SharedFile::write(std::uint64_t len,
                                              std::span<const std::byte> data) {
  SharedFileState& st = *state_;
  simkit::Engine& eng = comm_->engine();
  const simkit::Time t0 = eng.now();
  std::uint64_t at = 0;
  switch (st.mode_) {
    case IoMode::kUnix:
      at = local_pos_;
      co_await fs_->pwrite(comm_->node(), st.file_, at, len, data);
      local_pos_ += len;
      break;
    case IoMode::kLog:
      at = co_await log_op(hw::AccessKind::kWrite, len, {}, data);
      break;
    case IoMode::kSync:
      at = co_await sync_op(hw::AccessKind::kWrite, len, {}, data);
      break;
    case IoMode::kRecord: {
      assert(len == st.record_size_ && "M_RECORD requires fixed records");
      at = (my_ops_ * static_cast<std::uint64_t>(st.nprocs_) +
            static_cast<std::uint64_t>(comm_->rank())) *
           st.record_size_;
      co_await fs_->pwrite(comm_->node(), st.file_, at, len, data);
      break;
    }
    case IoMode::kGlobal:
      // One writer; everyone synchronizes on the result.
      at = local_pos_;
      if (comm_->rank() == 0) {
        co_await fs_->pwrite(comm_->node(), st.file_, at, len, data);
      }
      co_await mprt::barrier(*comm_);
      local_pos_ += len;
      break;
  }
  ++my_ops_;
  ++st.op_seq_;
  if (observer_) {
    observer_->record(OpKind::kWrite, t0, eng.now() - t0, len);
  }
  co_return at;
}

simkit::Task<std::uint64_t> SharedFile::read(std::uint64_t len,
                                             std::span<std::byte> out) {
  SharedFileState& st = *state_;
  simkit::Engine& eng = comm_->engine();
  const simkit::Time t0 = eng.now();
  std::uint64_t at = 0;
  switch (st.mode_) {
    case IoMode::kUnix:
      at = local_pos_;
      co_await fs_->pread(comm_->node(), st.file_, at, len, out);
      local_pos_ += len;
      break;
    case IoMode::kLog:
      at = co_await log_op(hw::AccessKind::kRead, len, out, {});
      break;
    case IoMode::kSync:
      at = co_await sync_op(hw::AccessKind::kRead, len, out, {});
      break;
    case IoMode::kRecord: {
      assert(len == st.record_size_ && "M_RECORD requires fixed records");
      at = (my_ops_ * static_cast<std::uint64_t>(st.nprocs_) +
            static_cast<std::uint64_t>(comm_->rank())) *
           st.record_size_;
      co_await fs_->pread(comm_->node(), st.file_, at, len, out);
      break;
    }
    case IoMode::kGlobal: {
      // Rank 0 touches the disks; the data fans out over the network.
      at = local_pos_;
      if (comm_->rank() == 0) {
        co_await fs_->pread(comm_->node(), st.file_, at, len, out);
      }
      std::span<std::byte> bview = out;
      co_await mprt::bcast(*comm_, 0, len, bview);
      local_pos_ += len;
      break;
    }
  }
  ++my_ops_;
  ++st.op_seq_;
  if (observer_) {
    observer_->record(OpKind::kRead, t0, eng.now() - t0, len);
  }
  co_return at;
}

simkit::Task<void> SharedFile::close() {
  // Last rank out cleans the kSync side table.
  co_await mprt::barrier(*comm_);
  if (comm_->rank() == 0) sync_waiters().erase(state_.get());
  co_await fs_->close(comm_->node(), state_->file_);
}

}  // namespace pfs
