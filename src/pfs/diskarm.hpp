// pfs/diskarm.hpp — disk arm with FIFO or SCAN (elevator) scheduling.
//
// The I/O-node server queues requests for each disk.  FIFO service (the
// default, and the conservative model used for the paper reproduction)
// seeks wherever the next arrival points; SCAN sweeps the arm across the
// platter serving requests in position order, the classic elevator
// algorithm real file servers used.  bench_ablation_scan quantifies the
// difference on the paper's scattered-access patterns.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "hw/disk.hpp"
#include "metrics/metrics.hpp"
#include "simkit/engine.hpp"
#include "simkit/task.hpp"

namespace pfs {

class DiskArm {
 public:
  DiskArm(simkit::Engine& eng, const hw::DiskParams& params, bool scan);
  DiskArm(const DiskArm&) = delete;
  DiskArm& operator=(const DiskArm&) = delete;

  /// Wait for the arm (FIFO or SCAN order), then perform the timed
  /// access.
  simkit::Task<void> serve(std::uint64_t phys, std::uint64_t len,
                           hw::AccessKind kind);

  const hw::DiskModel& model() const noexcept { return model_; }
  /// Fault-injection needs to stretch service times on a live arm.
  hw::DiskModel& mutable_model() noexcept { return model_; }
  std::uint64_t services() const noexcept { return services_; }
  std::size_t queue_length() const noexcept { return queue_.size(); }

 private:
  struct Waiter {
    std::uint64_t phys;
    std::uint64_t seq;
    std::coroutine_handle<> h;
  };

  struct Acquire {
    DiskArm& arm;
    std::uint64_t phys;
    bool await_ready() noexcept {
      if (!arm.busy_) {
        arm.busy_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      arm.queue_.push_back(Waiter{phys, arm.next_seq_++, h});
    }
    void await_resume() const noexcept {}
  };

  void release();
  std::size_t pick_next() const;

  simkit::Engine& eng_;
  hw::DiskModel model_;
  bool scan_;
  // Instrument handles, resolved once from the registry installed at
  // construction; all null when metrics are off (the default).
  metrics::Counter* m_seeks_ = nullptr;
  metrics::Histogram* m_seek_s_ = nullptr;
  metrics::Histogram* m_transfer_s_ = nullptr;
  metrics::Histogram* m_queue_wait_s_ = nullptr;
  bool busy_ = false;
  bool sweep_up_ = true;
  std::uint64_t next_seq_ = 0;
  std::uint64_t services_ = 0;
  std::vector<Waiter> queue_;
};

}  // namespace pfs
