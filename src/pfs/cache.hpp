// pfs/cache.hpp — per-I/O-node block cache (timing-only presence map).
//
// Content correctness is handled by SparseStore at the client layer; the
// cache only decides whether a request costs a disk access.  Dirty blocks
// (write-behind) are pinned: they cannot be evicted until the flusher has
// written them out.
//
// The implementation moved to the iosrv subsystem, which generalizes the
// historical LRU map into a pluggable replacement-policy interface
// (iosrv::CachePolicy, with LRU and ARC instances).  These aliases keep
// the pfs:: spelling working; pfs::BlockCache IS the historical LRU
// policy, move for move.
#pragma once

#include "iosrv/cache_policy.hpp"
#include "pfs/types.hpp"

namespace pfs {

using BlockKey = iosrv::BlockKey;
using BlockKeyHash = iosrv::BlockKeyHash;
using BlockCache = iosrv::LruPolicy;

}  // namespace pfs
