// pfs/cache.hpp — per-I/O-node block cache (timing-only LRU presence map).
//
// Content correctness is handled by SparseStore at the client layer; the
// cache only decides whether a request costs a disk access.  Dirty blocks
// (write-behind) are pinned: they cannot be evicted until the flusher has
// written them out.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "pfs/types.hpp"

namespace pfs {

struct BlockKey {
  FileId file;
  std::uint64_t block;
  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(k.file)
                                       << 40) ^ k.block);
  }
};

class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return map_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// Lookup with LRU touch; counts hit/miss statistics.
  bool lookup(const BlockKey& k) {
    auto it = map_.find(k);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return true;
  }

  bool contains(const BlockKey& k) const { return map_.count(k) != 0; }
  bool is_dirty(const BlockKey& k) const {
    auto it = map_.find(k);
    return it != map_.end() && it->second.dirty;
  }

  /// Insert (or refresh) a block.  Evicts clean LRU blocks when over
  /// capacity; dirty blocks are never evicted.  Returns false if the cache
  /// is saturated with pinned dirty blocks and the insert was skipped.
  bool insert(const BlockKey& k, bool dirty) {
    auto it = map_.find(k);
    if (it != map_.end()) {
      it->second.dirty = it->second.dirty || dirty;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return true;
    }
    while (map_.size() >= capacity_) {
      if (!evict_one_clean()) return false;  // everything pinned
    }
    lru_.push_front(k);
    map_.emplace(k, Entry{lru_.begin(), dirty});
    return true;
  }

  /// Mark a dirty block clean (flusher finished writing it).
  void mark_clean(const BlockKey& k) {
    auto it = map_.find(k);
    if (it != map_.end()) it->second.dirty = false;
  }

 private:
  struct Entry {
    std::list<BlockKey>::iterator lru_pos;
    bool dirty;
  };

  bool evict_one_clean() {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto m = map_.find(*it);
      if (!m->second.dirty) {
        lru_.erase(m->second.lru_pos);
        map_.erase(m);
        return true;
      }
    }
    return false;
  }

  std::size_t capacity_;
  std::list<BlockKey> lru_;
  std::unordered_map<BlockKey, Entry, BlockKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pfs
