#include "pfs/store.hpp"

#include <algorithm>
#include <cstring>

namespace pfs {

void SparseStore::write(std::uint64_t offset,
                        std::span<const std::byte> data) {
  if (data.empty()) return;
  const std::uint64_t end = offset + data.size();

  // Find the first range that could overlap or touch [offset, end).
  auto it = ranges_.upper_bound(offset);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() >= offset) it = prev;
  }

  // Merge all overlapping/touching ranges with the new data.
  std::uint64_t merged_start = offset;
  std::uint64_t merged_end = end;
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> absorbed;
  while (it != ranges_.end() && it->first <= merged_end) {
    merged_start = std::min(merged_start, it->first);
    merged_end = std::max(merged_end, it->first + it->second.size());
    resident_ -= it->second.size();
    absorbed.emplace_back(it->first, std::move(it->second));
    it = ranges_.erase(it);
  }

  std::vector<std::byte> merged(merged_end - merged_start);
  for (auto& [abs_off, bytes] : absorbed) {
    std::memcpy(merged.data() + (abs_off - merged_start), bytes.data(),
                bytes.size());
  }
  // New data wins over absorbed content.
  std::memcpy(merged.data() + (offset - merged_start), data.data(),
              data.size());
  resident_ += merged.size();
  ranges_.emplace(merged_start, std::move(merged));
}

void SparseStore::read(std::uint64_t offset, std::span<std::byte> out) const {
  if (out.empty()) return;
  std::memset(out.data(), 0, out.size());
  const std::uint64_t end = offset + out.size();

  auto it = ranges_.upper_bound(offset);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > offset) it = prev;
  }
  for (; it != ranges_.end() && it->first < end; ++it) {
    const std::uint64_t r_start = it->first;
    const std::uint64_t r_end = r_start + it->second.size();
    const std::uint64_t copy_start = std::max(offset, r_start);
    const std::uint64_t copy_end = std::min(end, r_end);
    if (copy_start >= copy_end) continue;
    std::memcpy(out.data() + (copy_start - offset),
                it->second.data() + (copy_start - r_start),
                copy_end - copy_start);
  }
}

}  // namespace pfs
