// pfs/store.hpp — sparse byte store for content-backed files.
//
// Timing and content are deliberately decoupled in this simulator: the
// event machinery prices every byte moved, while SparseStore holds actual
// bytes only for files that request backing (correctness tests, the real
// out-of-core FFT).  Unbacked files are sized but hole-only, so 37 GB
// workloads cost no host memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace pfs {

class SparseStore {
 public:
  /// Write bytes at offset (overwrites overlapping ranges).
  void write(std::uint64_t offset, std::span<const std::byte> data);

  /// Read into `out`; holes read as zero bytes.
  void read(std::uint64_t offset, std::span<std::byte> out) const;

  /// Total bytes physically stored (for memory accounting).
  std::uint64_t resident_bytes() const noexcept { return resident_; }

  bool empty() const noexcept { return ranges_.empty(); }
  void clear() {
    ranges_.clear();
    resident_ = 0;
  }

 private:
  // offset -> contiguous bytes; invariants: ranges never overlap and never
  // touch (adjacent ranges are merged).
  std::map<std::uint64_t, std::vector<std::byte>> ranges_;
  std::uint64_t resident_ = 0;
};

}  // namespace pfs
