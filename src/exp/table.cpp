#include "exp/table.hpp"

#include <algorithm>
#include <cstdarg>

namespace expt {

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

std::string fmt_u64(unsigned long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(width[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::csv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) line += ",";
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

}  // namespace expt
