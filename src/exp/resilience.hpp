// exp/resilience.hpp — reporting for fault-injection + checkpoint runs.
//
// Renders a ckpt::Report (plus the injector's own counters) as the
// lost-work / checkpoint-overhead / time-to-recovery split that the
// optimal-checkpoint-interval analysis reasons about.
#pragma once

#include <string>

#include "ckpt/ckpt.hpp"
#include "fault/injector.hpp"
#include "metrics/metrics.hpp"

namespace expt {

/// One-run breakdown: where the execution time went and what the fault
/// layer did to it.  `injector` may be null (fault-free runs).
std::string resilience_report(const ckpt::Report& rep,
                              const fault::Injector* injector);

/// Same, with the run's metrics registry appended as tables (see
/// metrics_report in exp/report.hpp).  `reg` may be null or empty.
std::string resilience_report(const ckpt::Report& rep,
                              const fault::Injector* injector,
                              const metrics::Registry* reg);

}  // namespace expt
