// exp/report.hpp — post-run resource utilization reporting.
//
// The paper's contention argument ("as the number of compute nodes
// increases so does the contention at the I/O nodes") in numbers: per-
// I/O-node served requests, disk operations, cache hit rates, and busy
// fraction over the run.
#pragma once

#include <string>

#include "metrics/metrics.hpp"
#include "pfs/fs.hpp"
#include "simkit/time.hpp"

namespace expt {

struct IoNodeUtilization {
  std::size_t node_index = 0;
  std::uint64_t requests = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double busy_fraction = 0.0;  // busy time / elapsed

  double hit_rate() const {
    const auto total = cache_hits + cache_misses;
    return total ? static_cast<double>(cache_hits) / total : 0.0;
  }
};

/// Snapshot one I/O node's counters relative to `elapsed` simulated time.
IoNodeUtilization io_node_utilization(const pfs::StripedFs& fs,
                                      std::size_t node, double elapsed);

/// ASCII table over all I/O nodes plus an aggregate row.
std::string utilization_report(pfs::StripedFs& fs, double elapsed);

/// Largest / smallest per-node request share — 1.0 means perfectly even
/// striping, large values mean hot-spotting.
double io_imbalance(pfs::StripedFs& fs);

/// ASCII tables over every instrument in the registry: counters, gauges,
/// histograms (count/mean/p50/p95/p99/max), and timeseries summaries.
/// Empty string for an empty registry.
std::string metrics_report(const metrics::Registry& reg);

}  // namespace expt
