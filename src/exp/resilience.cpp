#include "exp/resilience.hpp"

#include "exp/report.hpp"
#include "exp/table.hpp"

namespace expt {

std::string resilience_report(const ckpt::Report& rep,
                              const fault::Injector* injector) {
  const double exec = rep.exec_time;
  auto pct = [exec](double part) {
    return exec > 0.0 ? fmt("%.1f", 100.0 * part / exec) : std::string("-");
  };

  Table t({"Component", "Time (s)", "% of exec"});
  const double productive =
      exec - rep.ckpt_overhead - rep.lost_work - rep.recovery_time;
  t.add_row({"Productive work", fmt_s(productive), pct(productive)});
  t.add_row({"Checkpoint overhead", fmt_s(rep.ckpt_overhead),
             pct(rep.ckpt_overhead)});
  t.add_row({"Lost work (rolled back)", fmt_s(rep.lost_work),
             pct(rep.lost_work)});
  t.add_row({"Time to recovery", fmt_s(rep.recovery_time),
             pct(rep.recovery_time)});
  t.add_row({"Total execution", fmt_s(exec), pct(exec)});

  std::string out = t.str();
  out += "checkpoints: " + fmt_u64(rep.checkpoints) +
         " (" + fmt("%.1f", static_cast<double>(rep.ckpt_bytes) / 1e6) +
         " MB), restarts: " + fmt_u64(rep.restarts) +
         ", completed: " + (rep.completed ? "yes" : "NO") +
         (rep.state_verified ? "" : ", STATE MISMATCH") + "\n";
  out += "retries: " + fmt_u64(rep.retry.retries) +
         ", failovers: " + fmt_u64(rep.retry.failovers) +
         " (" + fmt_u64(rep.retry.diverged_writes) + " diverged writes)" +
         ", exhausted: " + fmt_u64(rep.retry.exhausted) +
         ", backoff: " + fmt_s(rep.retry.backoff_time) + " s\n";
  // Policy-specific lines only for non-default policies, so the sync_full
  // report stays byte-identical to the pre-policy engine's output.
  if (!rep.policy.is_sync_full()) {
    out += "policy: " + rep.policy.name() + ", " +
           fmt_u64(rep.full_checkpoints) + " full + " +
           fmt_u64(rep.delta_checkpoints) + " delta (" +
           fmt("%.1f", static_cast<double>(rep.delta_bytes) / 1e6) +
           " MB deltas), dropped: " + fmt_u64(rep.dropped_checkpoints) +
           "\n";
    if (rep.policy.write == ckpt::Policy::Write::kAsync) {
      out += "async drain: " + fmt_s(rep.drain_time) +
             " s busy (overlapped), stage wait: " + fmt_s(rep.stage_wait) +
             " s\n";
    }
  }
  // Robustness lines only when the run exercised the correlated-failure /
  // health-aware machinery, so every pre-domain report (and its pinned
  // golden) stays byte-identical.
  if (rep.lost_checkpoints > 0 || rep.divergences_repaired > 0 ||
      rep.hedged_reads > 0) {
    out += "robustness: " + fmt_u64(rep.lost_checkpoints) +
           " checkpoints lost to scrubs, " +
           fmt_u64(rep.divergences_repaired) + " copies re-mirrored, " +
           fmt_u64(rep.hedged_reads) + " hedged reads (" +
           fmt_u64(rep.hedge_wins) + " won by the mirror)\n";
  }
  if (injector) {
    out += "injected: " + fmt_u64(injector->transient_errors()) +
           " transient errors, " + fmt_u64(injector->rejected_requests()) +
           " requests rejected at down nodes\n";
    if (!injector->plan().domain_outages.empty() ||
        injector->plan().disk_markov.enabled) {
      out += "correlated: " +
             fmt_u64(injector->plan().domain_outages.size()) +
             " domain outages, " + fmt_u64(injector->sticky_transitions()) +
             " sticky + " + fmt_u64(injector->stuck_transitions()) +
             " stuck disk-arm episodes\n";
    }
  }
  return out;
}

std::string resilience_report(const ckpt::Report& rep,
                              const fault::Injector* injector,
                              const metrics::Registry* reg) {
  std::string out = resilience_report(rep, injector);
  if (reg && !reg->empty()) out += metrics_report(*reg);
  return out;
}

}  // namespace expt
