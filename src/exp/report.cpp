#include "exp/report.hpp"

#include <algorithm>

#include "exp/table.hpp"

namespace expt {

IoNodeUtilization io_node_utilization(const pfs::StripedFs& fs,
                                      std::size_t node, double elapsed) {
  // StripedFs::io_node is non-const; counters are logically const.
  auto& mut = const_cast<pfs::StripedFs&>(fs);
  const pfs::IoNode& n = mut.io_node(node);
  IoNodeUtilization u;
  u.node_index = node;
  u.requests = n.requests_served();
  u.disk_reads = n.disk_reads();
  u.disk_writes = n.disk_writes();
  u.cache_hits = n.cache().hits();
  u.cache_misses = n.cache().misses();
  u.busy_fraction = elapsed > 0 ? std::min(1.0, n.busy_time() / elapsed)
                                : 0.0;
  return u;
}

std::string utilization_report(pfs::StripedFs& fs, double elapsed) {
  Table table({"io node", "requests", "disk rd", "disk wr", "hit rate",
               "busy"});
  std::uint64_t req = 0, rd = 0, wr = 0, hit = 0, miss = 0;
  double busy = 0.0;
  for (std::size_t i = 0; i < fs.io_node_count(); ++i) {
    const IoNodeUtilization u = io_node_utilization(fs, i, elapsed);
    req += u.requests;
    rd += u.disk_reads;
    wr += u.disk_writes;
    hit += u.cache_hits;
    miss += u.cache_misses;
    busy += u.busy_fraction;
    table.add_row({fmt_u64(u.node_index), fmt_u64(u.requests),
                   fmt_u64(u.disk_reads), fmt_u64(u.disk_writes),
                   fmt("%.0f%%", 100.0 * u.hit_rate()),
                   fmt("%.0f%%", 100.0 * u.busy_fraction)});
  }
  const double agg_hit =
      (hit + miss) ? 100.0 * static_cast<double>(hit) / (hit + miss) : 0.0;
  table.add_row({"all", fmt_u64(req), fmt_u64(rd), fmt_u64(wr),
                 fmt("%.0f%%", agg_hit),
                 fmt("%.0f%%", 100.0 * busy /
                                   static_cast<double>(fs.io_node_count()))});
  return table.str();
}

std::string metrics_report(const metrics::Registry& reg) {
  std::string out;
  if (!reg.counters().empty()) {
    Table t({"counter", "value"});
    for (const auto& [name, c] : reg.counters()) {
      t.add_row({name, fmt_u64(c.value())});
    }
    out += t.str();
  }
  if (!reg.gauges().empty()) {
    Table t({"gauge", "last", "min", "max", "n"});
    for (const auto& [name, g] : reg.gauges()) {
      t.add_row({name, fmt("%.4g", g.last()), fmt("%.4g", g.min()),
                 fmt("%.4g", g.max()), fmt_u64(g.count())});
    }
    out += t.str();
  }
  if (!reg.histograms().empty()) {
    Table t({"histogram", "n", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : reg.histograms()) {
      t.add_row({name, fmt_u64(h.count()), fmt("%.4g", h.mean()),
                 fmt("%.4g", h.percentile(0.50)),
                 fmt("%.4g", h.percentile(0.95)),
                 fmt("%.4g", h.percentile(0.99)), fmt("%.4g", h.max())});
    }
    out += t.str();
  }
  if (!reg.timeseries_map().empty()) {
    Table t({"timeseries", "points", "dropped", "interval"});
    for (const auto& [name, ts] : reg.timeseries_map()) {
      t.add_row({name, fmt_u64(ts.samples().size()), fmt_u64(ts.dropped()),
                 fmt("%.4g", ts.interval())});
    }
    out += t.str();
  }
  return out;
}

double io_imbalance(pfs::StripedFs& fs) {
  std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
  for (std::size_t i = 0; i < fs.io_node_count(); ++i) {
    const std::uint64_t r = fs.io_node(i).requests_served();
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  if (fs.io_node_count() == 0 || hi == 0) return 1.0;
  return lo == 0 ? static_cast<double>(hi)
                 : static_cast<double>(hi) / static_cast<double>(lo);
}

}  // namespace expt
