// exp/metrics_run.hpp — one-object metrics wiring for bench binaries.
//
// A bench declares a MetricsRun right after parsing its Options and
// before building any machine or file system (construction-time code
// caches instrument handles from the registry current at that moment).
// When neither --metrics nor --metrics-out was given, nothing is
// installed and the run is byte-identical to a metrics-free build.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "exp/options.hpp"
#include "metrics/export.hpp"
#include "metrics/metrics.hpp"

namespace expt {

class MetricsRun {
 public:
  explicit MetricsRun(const Options& opt) : out_(opt.metrics_out) {
    if (opt.metrics_enabled()) scope_.emplace(registry);
  }
  ~MetricsRun() { finish(); }
  MetricsRun(const MetricsRun&) = delete;
  MetricsRun& operator=(const MetricsRun&) = delete;

  /// Uninstall the scope and write the JSON file if one was requested.
  /// Idempotent; returns false only when the file could not be written.
  bool finish() {
    if (finished_) return ok_;
    finished_ = true;
    scope_.reset();
    if (!out_.empty()) {
      ok_ = metrics::write_json_file(registry, out_);
      if (ok_) {
        std::printf("metrics: wrote %s\n", out_.c_str());
      } else {
        std::fprintf(stderr, "metrics: FAILED to write %s\n", out_.c_str());
      }
    }
    return ok_;
  }

  metrics::Registry registry;

 private:
  std::optional<metrics::Scope> scope_;
  std::string out_;
  bool finished_ = false;
  bool ok_ = true;
};

}  // namespace expt
