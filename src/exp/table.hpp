// exp/table.hpp — ASCII table / CSV emitter for experiment results.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace expt {

/// Column-aligned text table with a markdown-ish rendering, used by every
/// bench binary to print the paper's tables/figure series.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  std::string str() const;
  std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style cell formatting helpers.
std::string fmt(const char* format, double value);
inline std::string fmt_s(double seconds) { return fmt("%.1f", seconds); }
inline std::string fmt_mb(double mb) { return fmt("%.2f", mb); }
std::string fmt_u64(unsigned long long v);

}  // namespace expt
