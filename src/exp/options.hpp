// exp/options.hpp — shared command-line handling for the bench binaries.
//
// Every table/figure bench accepts:
//   --full         paper-sized op counts (default is a scaled-down run)
//   --scale=X      explicit volume/dump scale factor
//   --check        exit non-zero if the paper's qualitative shape fails
//   --csv          print CSV instead of the ASCII table
//   --metrics      collect metrics and print the registry table
//   --metrics-out=PATH  collect metrics and write them as JSON to PATH
//   --policy=NAME  checkpoint policy (bench_fault_ckpt):
//                  sync_full | sync_incr | async_full | async_incr
//   --seed=N       fault-plan seed (benches with stochastic fault plans)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace expt {

struct Options {
  double scale;   // volume scale (1.0 = paper-sized)
  bool check = false;
  bool csv = false;
  bool metrics = false;      // print the metrics registry table
  std::string metrics_out;   // write metrics JSON here ("" = don't)
  std::string policy;        // ckpt policy name ("" = bench default)
  std::uint64_t seed = 42;   // fault-plan seed (stochastic-plan benches)

  explicit Options(double default_scale = 0.25) : scale(default_scale) {}

  /// Metrics collection is on if either output was requested.
  bool metrics_enabled() const {
    return metrics || !metrics_out.empty();
  }

  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--full") == 0) {
        scale = 1.0;
      } else if (std::strncmp(a, "--scale=", 8) == 0) {
        scale = std::atof(a + 8);
      } else if (std::strcmp(a, "--check") == 0) {
        check = true;
      } else if (std::strcmp(a, "--csv") == 0) {
        csv = true;
      } else if (std::strcmp(a, "--metrics") == 0) {
        metrics = true;
      } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
        metrics_out = a + 14;
      } else if (std::strncmp(a, "--policy=", 9) == 0) {
        policy = a + 9;
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        seed = std::strtoull(a + 7, nullptr, 10);
      } else if (std::strcmp(a, "--help") == 0) {
        std::printf(
            "usage: %s [--full] [--scale=X] [--check] [--csv] [--metrics] "
            "[--metrics-out=PATH] [--policy=NAME] [--seed=N]\n",
            argv[0]);
        std::exit(0);
      }
    }
  }
};

/// Shape-check helper: prints PASS/FAIL lines; returns overall status.
class Checker {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    all_ok_ = all_ok_ && ok;
  }
  bool ok() const { return all_ok_; }
  int exit_code() const { return all_ok_ ? 0 : 1; }

 private:
  bool all_ok_ = true;
};

}  // namespace expt
