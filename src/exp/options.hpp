// exp/options.hpp — shared command-line handling for the scenario
// driver (`iosim`) and the bench-name alias binaries.
//
// Every scenario accepts:
//   --full         paper-sized op counts (default is a scaled-down run)
//   --scale=X      explicit volume/dump scale factor
//   --check        exit non-zero if the paper's qualitative shape fails
//   --csv          print CSV instead of the ASCII table
//   --metrics      collect metrics and print the registry table
//   --metrics-out=PATH  collect metrics and write them as JSON to PATH
//   --policy=NAME  checkpoint policy (fault_ckpt):
//                  sync_full | sync_incr | async_full | async_incr
//   --seed=N       fault-plan seed (scenarios with stochastic fault plans)
//   --audit        run every point under the audit::Ledger data-integrity
//                  auditor and print a per-scenario summary line
// Driver flags (scenario runner):
//   -j N / --jobs=N  thread count for grid points / scenarios
//   --repeat=K     run K times and fail on any output drift
//   --golden=PATH  fail unless output matches the pinned file
//   --all / --list scenario selection (iosim only)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace expt {

struct Options {
  double scale;   // volume scale (1.0 = paper-sized)
  bool scale_given = false;  // --scale/--full seen (else per-scenario default)
  bool check = false;
  bool csv = false;
  bool metrics = false;      // print the metrics registry table
  std::string metrics_out;   // write metrics JSON here ("" = don't)
  std::string policy;        // ckpt policy name ("" = bench default)
  std::uint64_t seed = 42;   // fault-plan seed (stochastic-plan benches)
  bool audit = false;        // cross-check reads/writes in an audit ledger
  int jobs = 1;              // scenario-runner thread budget
  int repeat = 1;            // determinism gate: run K times, diff outputs
  std::string golden;        // determinism gate: pinned-output file
  bool all = false;          // iosim run --all
  bool list = false;         // iosim --list
  /// Set by parse() on the first unknown `-`/`--` token: a message naming
  /// the bad option and listing the valid ones.  Callers print it and
  /// exit 2; positionals (scenario names) never trigger it.
  std::string error;

  explicit Options(double default_scale = 0.25) : scale(default_scale) {}

  /// Metrics collection is on if either output was requested.
  bool metrics_enabled() const {
    return metrics || !metrics_out.empty();
  }

  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--full") == 0) {
        scale = 1.0;
        scale_given = true;
      } else if (std::strncmp(a, "--scale=", 8) == 0) {
        scale = std::atof(a + 8);
        scale_given = true;
      } else if (std::strcmp(a, "--check") == 0) {
        check = true;
      } else if (std::strcmp(a, "--csv") == 0) {
        csv = true;
      } else if (std::strcmp(a, "--metrics") == 0) {
        metrics = true;
      } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
        metrics_out = a + 14;
      } else if (std::strncmp(a, "--policy=", 9) == 0) {
        policy = a + 9;
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        seed = std::strtoull(a + 7, nullptr, 10);
      } else if (std::strcmp(a, "--audit") == 0) {
        audit = true;
      } else if (std::strncmp(a, "--jobs=", 7) == 0) {
        jobs = std::atoi(a + 7);
      } else if (std::strcmp(a, "-j") == 0 && i + 1 < argc) {
        jobs = std::atoi(argv[++i]);
      } else if (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0') {
        jobs = std::atoi(a + 2);
      } else if (std::strncmp(a, "--repeat=", 9) == 0) {
        repeat = std::atoi(a + 9);
      } else if (std::strncmp(a, "--golden=", 9) == 0) {
        golden = a + 9;
      } else if (std::strcmp(a, "--all") == 0) {
        all = true;
      } else if (std::strcmp(a, "--list") == 0) {
        list = true;
      } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
        std::printf(
            "usage: %s [--full] [--scale=X] [--check] [--csv] [--metrics] "
            "[--metrics-out=PATH] [--policy=NAME] [--seed=N] [--audit] "
            "[-j N] [--repeat=K] [--golden=PATH]\n",
            argv[0]);
        std::exit(0);
      } else if (a[0] == '-' && error.empty()) {
        // A flag we don't know.  Record (don't exit: parse stays testable
        // and the caller owns the exit path); positionals fall through.
        error = std::string("unknown option '") + a +
                "' (valid: --full --scale=X --check --csv --metrics "
                "--metrics-out=PATH --policy=NAME --seed=N --audit "
                "-j N/--jobs=N --repeat=K --golden=PATH --all --list "
                "--help)";
      }
    }
    if (jobs < 1) jobs = 1;
    if (repeat < 1) repeat = 1;
  }
};

/// Shape-check helper: prints PASS/FAIL lines; returns overall status.
class Checker {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    all_ok_ = all_ok_ && ok;
  }
  bool ok() const { return all_ok_; }
  int exit_code() const { return all_ok_ ? 0 : 1; }

 private:
  bool all_ok_ = true;
};

}  // namespace expt
