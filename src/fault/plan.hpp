// fault/plan.hpp — declarative fault schedules for the simulated machine.
//
// An InjectionPlan is pure data: a list of timed fault episodes plus a
// transient-error probability, all in absolute simulated time.  The same
// plan + the same seed replays bit-identically (the simulator's core
// promise extends to faulty runs).  Plans are armed at runtime by
// fault::Injector, whose clock flips state at the planned instants.
#pragma once

#include <cstdint>
#include <vector>

#include "simkit/time.hpp"

namespace fault {

/// One episode of degraded service on a disk: every access served during
/// [start, end) takes `latency_factor` times longer (arm friction, media
/// retries, thermal recalibration).  A very large factor models a stuck
/// arm: requests still complete, but the queue behind them collapses.
struct DiskDegradeEpisode {
  std::size_t io_node = 0;  // index into the machine's I/O partition
  std::uint32_t disk = 0;   // disk within the node
  simkit::Time start = 0.0;
  simkit::Time end = 0.0;
  double latency_factor = 1.0;
};

/// Fail-stop crash of a whole I/O node: every request arriving during
/// [crash, reboot) is rejected with pfs::IoError (kNodeDown).  The node
/// serves normally again from `reboot` on.
///
/// `scrub` distinguishes power-loss semantics from a clean reboot: a
/// scrubbing crash (rack/switch power event) destroys data the node
/// stored before `crash` — write-behind buffers and staged local files
/// are gone when it comes back.  Recovery layers consult
/// Injector::node_scrubbed_in to decide whether a checkpoint copy that
/// striped over this node is still trustworthy.  Plain crashes (the
/// default) keep data intact, so pre-existing plans replay identically.
struct NodeCrashWindow {
  std::size_t io_node = 0;
  simkit::Time crash = 0.0;
  simkit::Time reboot = 0.0;
  bool scrub = false;
};

/// A correlated outage of one failure domain (every I/O node behind a
/// rack switch goes down together).  Bookkeeping only: building one also
/// materializes per-member NodeCrashWindows, which is what the injector
/// arms — so the runtime crash path is identical for correlated and
/// independent faults, and only reporting and placement logic care.
struct DomainOutage {
  std::size_t domain = 0;
  simkit::Time start = 0.0;
  simkit::Time end = 0.0;
};

/// Continuous-time Markov model of disk-arm sticking, the stochastic
/// replacement for hand-planned DiskDegradeEpisodes.  Each attached disk
/// walks healthy -> sticky -> (stuck | healthy) -> ... independently on a
/// stream split from the plan seed, so trajectories don't depend on
/// attach order or on how many disks the machine has.  Dwell times are
/// exponential; transitions stop at `horizon`, after which every disk
/// heals permanently (the plan's horizon() covers this).
struct MarkovDiskParams {
  bool enabled = false;
  simkit::Time horizon = 0.0;     // generate transitions in [0, horizon)
  double mean_healthy_s = 600.0;  // dwell before the arm starts sticking
  double mean_sticky_s = 20.0;    // dwell while sticking
  double mean_stuck_s = 5.0;      // dwell while fully stuck
  double p_stick = 0.25;          // sticky -> stuck (else heals)
  double sticky_factor = 4.0;     // service-time stretch while sticky
  double stuck_factor = 40.0;     // stretch while stuck
};

struct InjectionPlan {
  std::vector<DiskDegradeEpisode> disk_episodes;
  std::vector<NodeCrashWindow> crashes;
  std::vector<DomainOutage> domain_outages;
  MarkovDiskParams disk_markov;

  /// Per-request probability of a transient failure (command timeout,
  /// dropped server buffer).  Rolled on the injector's own RNG stream in
  /// request-arrival order, so a given seed produces a fixed fault
  /// pattern.  0 (the default) never touches the RNG.
  double transient_error_prob = 0.0;
  std::uint64_t seed = 0x5EEDFA17u;

  /// True only when arming the plan is a guaranteed no-op.  Stochastic
  /// processes count as content: a Markov-disk plan with no planned
  /// episodes still perturbs every disk it touches.
  bool empty() const noexcept {
    return disk_episodes.empty() && crashes.empty() &&
           domain_outages.empty() && !disk_markov.enabled &&
           transient_error_prob <= 0.0;
  }

  /// Latest fault edge in the plan; after this instant the machine is
  /// permanently healthy.
  simkit::Time horizon() const noexcept;

  // -- builder helpers ----------------------------------------------------
  InjectionPlan& degrade_disk(std::size_t io_node, std::uint32_t disk,
                              simkit::Time start, simkit::Time end,
                              double latency_factor);
  InjectionPlan& crash_node(std::size_t io_node, simkit::Time crash,
                            simkit::Time reboot, bool scrub = false);
  InjectionPlan& with_transient_errors(double prob);

  /// Take a whole failure domain down together: records a DomainOutage
  /// and materializes one scrubbing (by default) crash window per member
  /// node, since a rack power event loses what those nodes stored.
  InjectionPlan& outage_domain(std::size_t domain,
                               const std::vector<std::uint32_t>& members,
                               simkit::Time start, simkit::Time end,
                               bool scrub = true);
  InjectionPlan& with_markov_disks(MarkovDiskParams p);

  /// Deterministic random crash schedule: exponential inter-crash gaps
  /// with mean `mtbf` seconds over [0, horizon), each crash taking down a
  /// uniformly chosen I/O node for `outage` seconds.  Windows on the same
  /// node may overlap; the injector treats the union as down-time.
  static InjectionPlan poisson_node_crashes(std::size_t io_nodes, double mtbf,
                                            double outage,
                                            simkit::Time horizon,
                                            std::uint64_t seed);

  /// MTBF-matched correlated schedule: the same exponential event process
  /// as poisson_node_crashes (mean gap `mtbf`), but a fraction
  /// `correlated_fraction` of events are rack-scoped — a uniformly chosen
  /// failure domain of `nodes_per_domain` consecutive I/O nodes loses
  /// power together (scrubbing every member by default; pass
  /// `scrub_domains = false` for correlated-but-clean crashes where disk
  /// contents and redo logs survive the outage), while the rest crash one
  /// uniform node cleanly.  Event *instants* depend only on (seed, mtbf,
  /// horizon), so sweeping the fraction compares identical fault clocks
  /// with different blast radii.
  static InjectionPlan correlated_node_crashes(
      std::size_t io_nodes, std::size_t nodes_per_domain, double mtbf,
      double outage, double correlated_fraction, simkit::Time horizon,
      std::uint64_t seed, bool scrub_domains = true);
};

}  // namespace fault
