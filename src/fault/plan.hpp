// fault/plan.hpp — declarative fault schedules for the simulated machine.
//
// An InjectionPlan is pure data: a list of timed fault episodes plus a
// transient-error probability, all in absolute simulated time.  The same
// plan + the same seed replays bit-identically (the simulator's core
// promise extends to faulty runs).  Plans are armed at runtime by
// fault::Injector, whose clock flips state at the planned instants.
#pragma once

#include <cstdint>
#include <vector>

#include "simkit/time.hpp"

namespace fault {

/// One episode of degraded service on a disk: every access served during
/// [start, end) takes `latency_factor` times longer (arm friction, media
/// retries, thermal recalibration).  A very large factor models a stuck
/// arm: requests still complete, but the queue behind them collapses.
struct DiskDegradeEpisode {
  std::size_t io_node = 0;  // index into the machine's I/O partition
  std::uint32_t disk = 0;   // disk within the node
  simkit::Time start = 0.0;
  simkit::Time end = 0.0;
  double latency_factor = 1.0;
};

/// Fail-stop crash of a whole I/O node: every request arriving during
/// [crash, reboot) is rejected with pfs::IoError (kNodeDown).  The node
/// serves normally again from `reboot` on.
struct NodeCrashWindow {
  std::size_t io_node = 0;
  simkit::Time crash = 0.0;
  simkit::Time reboot = 0.0;
};

struct InjectionPlan {
  std::vector<DiskDegradeEpisode> disk_episodes;
  std::vector<NodeCrashWindow> crashes;

  /// Per-request probability of a transient failure (command timeout,
  /// dropped server buffer).  Rolled on the injector's own RNG stream in
  /// request-arrival order, so a given seed produces a fixed fault
  /// pattern.  0 (the default) never touches the RNG.
  double transient_error_prob = 0.0;
  std::uint64_t seed = 0x5EEDFA17u;

  bool empty() const noexcept {
    return disk_episodes.empty() && crashes.empty() &&
           transient_error_prob <= 0.0;
  }

  /// Latest fault edge in the plan; after this instant the machine is
  /// permanently healthy.
  simkit::Time horizon() const noexcept;

  // -- builder helpers ----------------------------------------------------
  InjectionPlan& degrade_disk(std::size_t io_node, std::uint32_t disk,
                              simkit::Time start, simkit::Time end,
                              double latency_factor);
  InjectionPlan& crash_node(std::size_t io_node, simkit::Time crash,
                            simkit::Time reboot);
  InjectionPlan& with_transient_errors(double prob);

  /// Deterministic random crash schedule: exponential inter-crash gaps
  /// with mean `mtbf` seconds over [0, horizon), each crash taking down a
  /// uniformly chosen I/O node for `outage` seconds.  Windows on the same
  /// node may overlap; the injector treats the union as down-time.
  static InjectionPlan poisson_node_crashes(std::size_t io_nodes, double mtbf,
                                            double outage,
                                            simkit::Time horizon,
                                            std::uint64_t seed);
};

}  // namespace fault
