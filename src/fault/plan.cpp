#include "fault/plan.hpp"

#include <algorithm>

#include "simkit/rng.hpp"

namespace fault {

simkit::Time InjectionPlan::horizon() const noexcept {
  simkit::Time h = 0.0;
  for (const auto& e : disk_episodes) h = std::max(h, e.end);
  for (const auto& c : crashes) h = std::max(h, c.reboot);
  for (const auto& d : domain_outages) h = std::max(h, d.end);
  if (disk_markov.enabled) h = std::max(h, disk_markov.horizon);
  return h;
}

InjectionPlan& InjectionPlan::degrade_disk(std::size_t io_node,
                                           std::uint32_t disk,
                                           simkit::Time start,
                                           simkit::Time end,
                                           double latency_factor) {
  disk_episodes.push_back(
      DiskDegradeEpisode{io_node, disk, start, end, latency_factor});
  return *this;
}

InjectionPlan& InjectionPlan::crash_node(std::size_t io_node,
                                         simkit::Time crash,
                                         simkit::Time reboot, bool scrub) {
  crashes.push_back(NodeCrashWindow{io_node, crash, reboot, scrub});
  return *this;
}

InjectionPlan& InjectionPlan::outage_domain(
    std::size_t domain, const std::vector<std::uint32_t>& members,
    simkit::Time start, simkit::Time end, bool scrub) {
  domain_outages.push_back(DomainOutage{domain, start, end});
  for (const std::uint32_t m : members) {
    crashes.push_back(NodeCrashWindow{m, start, end, scrub});
  }
  return *this;
}

InjectionPlan& InjectionPlan::with_markov_disks(MarkovDiskParams p) {
  disk_markov = p;
  return *this;
}

InjectionPlan& InjectionPlan::with_transient_errors(double prob) {
  transient_error_prob = prob;
  return *this;
}

InjectionPlan InjectionPlan::poisson_node_crashes(std::size_t io_nodes,
                                                  double mtbf, double outage,
                                                  simkit::Time horizon,
                                                  std::uint64_t seed) {
  InjectionPlan plan;
  plan.seed = seed;
  if (io_nodes == 0 || mtbf <= 0.0) return plan;
  simkit::Rng rng(seed);
  simkit::Time t = 0.0;
  for (;;) {
    t += rng.exponential(mtbf);
    if (t >= horizon) break;
    const auto node = static_cast<std::size_t>(rng.uniform_int(io_nodes));
    plan.crash_node(node, t, t + outage);
  }
  return plan;
}

InjectionPlan InjectionPlan::correlated_node_crashes(
    std::size_t io_nodes, std::size_t nodes_per_domain, double mtbf,
    double outage, double correlated_fraction, simkit::Time horizon,
    std::uint64_t seed, bool scrub_domains) {
  InjectionPlan plan;
  plan.seed = seed;
  if (io_nodes == 0 || mtbf <= 0.0) return plan;
  const std::size_t fan =
      nodes_per_domain == 0 ? 1 : std::min(nodes_per_domain, io_nodes);
  const std::size_t domains = (io_nodes + fan - 1) / fan;
  simkit::Rng rng(seed);
  simkit::Time t = 0.0;
  for (;;) {
    t += rng.exponential(mtbf);
    if (t >= horizon) break;
    // Exactly three draws per event regardless of outcome, so the event
    // clock is invariant under correlated_fraction sweeps.
    const bool burst = rng.uniform() < correlated_fraction;
    const double pick = rng.uniform();
    if (burst) {
      const auto d = std::min(domains - 1,
                              static_cast<std::size_t>(pick * domains));
      std::vector<std::uint32_t> members;
      const std::size_t lo = d * fan;
      const std::size_t hi = std::min(lo + fan, io_nodes);
      members.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        members.push_back(static_cast<std::uint32_t>(i));
      }
      plan.outage_domain(d, members, t, t + outage, scrub_domains);
    } else {
      const auto node = std::min(io_nodes - 1,
                                 static_cast<std::size_t>(pick * io_nodes));
      plan.crash_node(node, t, t + outage);
    }
  }
  return plan;
}

}  // namespace fault
