#include "fault/plan.hpp"

#include <algorithm>

#include "simkit/rng.hpp"

namespace fault {

simkit::Time InjectionPlan::horizon() const noexcept {
  simkit::Time h = 0.0;
  for (const auto& e : disk_episodes) h = std::max(h, e.end);
  for (const auto& c : crashes) h = std::max(h, c.reboot);
  return h;
}

InjectionPlan& InjectionPlan::degrade_disk(std::size_t io_node,
                                           std::uint32_t disk,
                                           simkit::Time start,
                                           simkit::Time end,
                                           double latency_factor) {
  disk_episodes.push_back(
      DiskDegradeEpisode{io_node, disk, start, end, latency_factor});
  return *this;
}

InjectionPlan& InjectionPlan::crash_node(std::size_t io_node,
                                         simkit::Time crash,
                                         simkit::Time reboot) {
  crashes.push_back(NodeCrashWindow{io_node, crash, reboot});
  return *this;
}

InjectionPlan& InjectionPlan::with_transient_errors(double prob) {
  transient_error_prob = prob;
  return *this;
}

InjectionPlan InjectionPlan::poisson_node_crashes(std::size_t io_nodes,
                                                  double mtbf, double outage,
                                                  simkit::Time horizon,
                                                  std::uint64_t seed) {
  InjectionPlan plan;
  plan.seed = seed;
  if (io_nodes == 0 || mtbf <= 0.0) return plan;
  simkit::Rng rng(seed);
  simkit::Time t = 0.0;
  for (;;) {
    t += rng.exponential(mtbf);
    if (t >= horizon) break;
    const auto node = static_cast<std::size_t>(rng.uniform_int(io_nodes));
    plan.crash_node(node, t, t + outage);
  }
  return plan;
}

}  // namespace fault
