#include "fault/injector.hpp"

#include <algorithm>

namespace fault {

simkit::Task<void> Injector::arm_crash(std::size_t node) {
  if (node >= down_.size()) down_.resize(node + 1, 0);
  ++down_[node];
  co_return;
}

simkit::Task<void> Injector::clear_crash(std::size_t node) {
  if (node < down_.size() && down_[node] > 0) --down_[node];
  co_return;
}

simkit::Task<void> Injector::arm_episode(std::uint64_t disk_key,
                                         double factor) {
  ++episode_depth_[disk_key];
  auto it = disks_.find(disk_key);
  // Overlapping episodes on one disk: the most recently armed factor wins.
  if (it != disks_.end()) it->second->set_service_scale(factor);
  co_return;
}

simkit::Task<void> Injector::clear_episode(std::uint64_t disk_key) {
  auto depth = episode_depth_.find(disk_key);
  if (depth == episode_depth_.end() || --depth->second > 0) co_return;
  episode_depth_.erase(depth);
  auto it = disks_.find(disk_key);
  if (it != disks_.end()) it->second->set_service_scale(1.0);
}

void Injector::start(simkit::Engine& eng) {
  if (started_) return;
  started_ = true;
  // Crash windows already open at the current time must arm immediately;
  // spawn_at clamps past times to now, so scheduling is uniform.  Reboot
  // edges are scheduled after crash edges at equal times (schedule order
  // breaks ties), so a zero-length window never goes negative.
  for (const auto& c : plan_.crashes) {
    eng.spawn_at(c.crash, arm_crash(c.io_node), "fault_crash");
    eng.spawn_at(c.reboot, clear_crash(c.io_node), "fault_reboot");
  }
  for (const auto& e : plan_.disk_episodes) {
    const std::uint64_t k = key(e.io_node, e.disk);
    eng.spawn_at(e.start, arm_episode(k, e.latency_factor), "fault_degrade");
    eng.spawn_at(e.end, clear_episode(k), "fault_heal");
  }
}

simkit::Time Injector::all_up_by(simkit::Time now) const noexcept {
  // Chase overlapping/chained windows: keep extending while some window
  // covers the candidate instant.
  simkit::Time t = now;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& c : plan_.crashes) {
      if (c.crash <= t && t < c.reboot) {
        t = c.reboot;
        moved = true;
      }
    }
  }
  return t;
}

}  // namespace fault
