#include "fault/injector.hpp"

#include <algorithm>

namespace fault {

simkit::Task<void> Injector::arm_crash(std::size_t node, bool scrub) {
  if (node >= down_.size()) down_.resize(node + 1, 0);
  ++down_[node];
  if (m_crashes_) m_crashes_->inc();
  for (const CrashListener& l : crash_listeners_) l(node, scrub);
  co_return;
}

simkit::Task<void> Injector::clear_crash(std::size_t node) {
  if (node < down_.size() && down_[node] > 0) {
    // Recovery fires only when the last overlapping window closes — the
    // node is actually reachable again.
    if (--down_[node] == 0) {
      for (const RecoveryListener& l : recovery_listeners_) l(node);
    }
  }
  co_return;
}

simkit::Task<void> Injector::arm_episode(std::uint64_t disk_key,
                                         double factor) {
  ++episode_depth_[disk_key];
  auto it = disks_.find(disk_key);
  // Overlapping episodes on one disk: the most recently armed factor wins.
  if (it != disks_.end()) it->second->set_service_scale(factor);
  co_return;
}

simkit::Task<void> Injector::clear_episode(std::uint64_t disk_key) {
  auto depth = episode_depth_.find(disk_key);
  if (depth == episode_depth_.end() || --depth->second > 0) co_return;
  episode_depth_.erase(depth);
  auto it = disks_.find(disk_key);
  if (it != disks_.end()) it->second->set_service_scale(1.0);
}

simkit::Task<void> Injector::markov_step(std::uint64_t disk_key,
                                         double factor, int state) {
  auto it = disks_.find(disk_key);
  if (it != disks_.end()) it->second->set_service_scale(factor);
  if (state == 1) ++sticky_transitions_;
  if (state == 2) ++stuck_transitions_;
  if (state != 0 && m_disk_transitions_) m_disk_transitions_->inc();
  co_return;
}

void Injector::schedule_markov(simkit::Engine& eng) {
  // One trajectory per attached disk, on a stream split from the plan
  // seed by the disk's stable key: generation order (disks_ is a sorted
  // map) and disk count don't perturb each other's walks.  All edges are
  // pre-materialized here, so the run replays bit-identically.
  const MarkovDiskParams& mp = plan_.disk_markov;
  for (const auto& [k, model] : disks_) {
    (void)model;
    simkit::Rng walk = simkit::Rng(plan_.seed ^ 0xD15Cul).split(k + 1);
    simkit::Time t = 0.0;
    int state = 0;  // 0 healthy, 1 sticky, 2 stuck
    for (;;) {
      const double dwell = state == 0   ? walk.exponential(mp.mean_healthy_s)
                           : state == 1 ? walk.exponential(mp.mean_sticky_s)
                                        : walk.exponential(mp.mean_stuck_s);
      t += dwell;
      if (t >= mp.horizon) break;
      state = state == 0   ? 1
              : state == 2 ? 1
                           : (walk.uniform() < mp.p_stick ? 2 : 0);
      const double factor = state == 0   ? 1.0
                            : state == 1 ? mp.sticky_factor
                                         : mp.stuck_factor;
      eng.spawn_at(t, markov_step(k, factor, state), "fault_markov");
    }
    // A walk that ends away from healthy heals at the horizon; without
    // this the tail of the run would stay degraded forever.
    if (state != 0) {
      eng.spawn_at(mp.horizon, markov_step(k, 1.0, 0), "fault_markov");
    }
  }
}

void Injector::start(simkit::Engine& eng) {
  if (started_) return;
  started_ = true;
  if (metrics::Registry* r = metrics::current()) {
    m_crashes_ = &r->counter("fault.node_crashes");
    m_transients_ = &r->counter("fault.transient_errors");
    m_rejections_ = &r->counter("fault.rejected_requests");
    m_disk_transitions_ = &r->counter("fault.disk_transitions");
    if (!plan_.domain_outages.empty()) {
      // Known at arm time (outages are plan data, not runtime state).
      r->counter("fault.domain_outages").inc(plan_.domain_outages.size());
    }
  }
  // Crash windows already open at the current time must arm immediately;
  // spawn_at clamps past times to now, so scheduling is uniform.  Reboot
  // edges are scheduled after crash edges at equal times (schedule order
  // breaks ties), so a zero-length window never goes negative.
  for (const auto& c : plan_.crashes) {
    eng.spawn_at(c.crash, arm_crash(c.io_node, c.scrub), "fault_crash");
    eng.spawn_at(c.reboot, clear_crash(c.io_node), "fault_reboot");
  }
  for (const auto& e : plan_.disk_episodes) {
    const std::uint64_t k = key(e.io_node, e.disk);
    eng.spawn_at(e.start, arm_episode(k, e.latency_factor), "fault_degrade");
    eng.spawn_at(e.end, clear_episode(k), "fault_heal");
  }
  if (plan_.disk_markov.enabled) schedule_markov(eng);
}

simkit::Time Injector::all_up_by(simkit::Time now) const noexcept {
  // Chase overlapping/chained windows: keep extending while some window
  // covers the candidate instant.
  simkit::Time t = now;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& c : plan_.crashes) {
      if (c.crash <= t && t < c.reboot) {
        t = c.reboot;
        moved = true;
      }
    }
  }
  return t;
}

simkit::Time Injector::nodes_up_by(std::span<const std::uint32_t> nodes,
                                   simkit::Time now) const noexcept {
  simkit::Time t = now;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& c : plan_.crashes) {
      if (!(c.crash <= t && t < c.reboot)) continue;
      for (const std::uint32_t n : nodes) {
        if (c.io_node == n) {
          t = c.reboot;
          moved = true;
          break;
        }
      }
    }
  }
  return t;
}

bool Injector::node_scrubbed_in(std::size_t io_node, simkit::Time t0,
                                simkit::Time t1) const noexcept {
  for (const auto& c : plan_.crashes) {
    if (c.scrub && c.io_node == io_node && t0 < c.crash && c.crash <= t1) {
      return true;
    }
  }
  return false;
}

}  // namespace fault
