// fault/injector.hpp — runtime fault state, armed by a simulated clock.
//
// The Injector turns an InjectionPlan into live machine state.  start()
// schedules one finite process per fault edge (crash, reboot, episode
// start/end) at its planned simulated time; pfs::IoNode consults the
// armed state on every request, and registered hw::DiskModels have their
// service_scale stretched for the duration of a degradation episode.
//
// Pay-for-what-you-use: a StripedFs without an injector (or with an empty
// plan) takes no extra simulated time and produces bit-identical results.
// All edge processes are finite, so a full Engine::run() drains them.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fault/plan.hpp"
#include "hw/disk.hpp"
#include "simkit/engine.hpp"
#include "simkit/rng.hpp"

namespace fault {

class Injector {
 public:
  explicit Injector(InjectionPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  const InjectionPlan& plan() const noexcept { return plan_; }

  /// Schedule every fault edge on the engine.  Called once (idempotent);
  /// pfs::StripedFs does this when constructed with an injector.
  void start(simkit::Engine& eng);
  bool started() const noexcept { return started_; }

  // -- armed state (consulted by pfs on the request path) -----------------
  bool node_down(std::size_t io_node) const noexcept {
    return io_node < down_.size() && down_[io_node] > 0;
  }

  /// Roll a transient request failure.  Consumes the RNG stream only when
  /// the plan has a positive error probability.
  bool roll_transient() {
    if (plan_.transient_error_prob <= 0.0) return false;
    if (rng_.uniform() >= plan_.transient_error_prob) return false;
    ++transient_errors_;
    return true;
  }

  /// A disk registers itself so degradation episodes can reach its model.
  void attach_disk(std::size_t io_node, std::uint32_t disk,
                   hw::DiskModel* model) {
    disks_[key(io_node, disk)] = model;
  }

  void count_rejection() noexcept { ++rejected_requests_; }

  // -- plan queries (no armed state needed) -------------------------------
  /// Earliest time >= now at which no crash window keeps a node down: the
  /// instant a recovery manager can expect requests to succeed again.
  simkit::Time all_up_by(simkit::Time now) const noexcept;

  // -- counters -----------------------------------------------------------
  std::uint64_t transient_errors() const noexcept { return transient_errors_; }
  std::uint64_t rejected_requests() const noexcept {
    return rejected_requests_;
  }

 private:
  static std::uint64_t key(std::size_t node, std::uint32_t disk) {
    return (static_cast<std::uint64_t>(node) << 32) | disk;
  }

  simkit::Task<void> arm_crash(std::size_t node);
  simkit::Task<void> clear_crash(std::size_t node);
  simkit::Task<void> arm_episode(std::uint64_t disk_key, double factor);
  simkit::Task<void> clear_episode(std::uint64_t disk_key);

  InjectionPlan plan_;
  simkit::Rng rng_;
  bool started_ = false;
  // Overlapping windows/episodes nest: a node is down while its count is
  // positive; a disk reverts to 1.0 only when its last episode ends.
  std::vector<int> down_;
  std::map<std::uint64_t, int> episode_depth_;
  std::map<std::uint64_t, hw::DiskModel*> disks_;
  std::uint64_t transient_errors_ = 0;
  std::uint64_t rejected_requests_ = 0;
};

}  // namespace fault
