// fault/injector.hpp — runtime fault state, armed by a simulated clock.
//
// The Injector turns an InjectionPlan into live machine state.  start()
// schedules one finite process per fault edge (crash, reboot, episode
// start/end) at its planned simulated time; pfs::IoNode consults the
// armed state on every request, and registered hw::DiskModels have their
// service_scale stretched for the duration of a degradation episode.
//
// Pay-for-what-you-use: a StripedFs without an injector (or with an empty
// plan) takes no extra simulated time and produces bit-identical results.
// All edge processes are finite, so a full Engine::run() drains them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "fault/plan.hpp"
#include "hw/disk.hpp"
#include "metrics/metrics.hpp"
#include "simkit/engine.hpp"
#include "simkit/rng.hpp"

namespace fault {

class Injector {
 public:
  explicit Injector(InjectionPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  const InjectionPlan& plan() const noexcept { return plan_; }

  /// Fired at simulated time on every crash edge of `node` (`scrub` is
  /// the window's scrub flag) and on the reboot edge that brings the
  /// node's overlapping-window depth back to zero.  This is how crash
  /// semantics reach subscribers with live state — the smart server
  /// invalidates its volatile cache/pool, health trackers note the
  /// outage — without the injector knowing about any of them.
  /// Listeners may be registered before or after start(); they run at
  /// edge-fire time either way.
  using CrashListener = std::function<void(std::size_t node, bool scrub)>;
  using RecoveryListener = std::function<void(std::size_t node)>;
  void on_node_crash(CrashListener l) {
    crash_listeners_.push_back(std::move(l));
  }
  void on_node_recovery(RecoveryListener l) {
    recovery_listeners_.push_back(std::move(l));
  }

  /// Schedule every fault edge on the engine.  Called once (idempotent);
  /// pfs::StripedFs does this when constructed with an injector.
  void start(simkit::Engine& eng);
  bool started() const noexcept { return started_; }

  // -- armed state (consulted by pfs on the request path) -----------------
  bool node_down(std::size_t io_node) const noexcept {
    return io_node < down_.size() && down_[io_node] > 0;
  }

  /// Roll a transient request failure.  Consumes the RNG stream only when
  /// the plan has a positive error probability.
  bool roll_transient() {
    if (plan_.transient_error_prob <= 0.0) return false;
    if (rng_.uniform() >= plan_.transient_error_prob) return false;
    ++transient_errors_;
    if (m_transients_) m_transients_->inc();
    return true;
  }

  /// A disk registers itself so degradation episodes can reach its model.
  void attach_disk(std::size_t io_node, std::uint32_t disk,
                   hw::DiskModel* model) {
    disks_[key(io_node, disk)] = model;
  }

  void count_rejection() noexcept {
    ++rejected_requests_;
    if (m_rejections_) m_rejections_->inc();
  }

  // -- plan queries (no armed state needed) -------------------------------
  /// Earliest time >= now at which no crash window keeps a node down: the
  /// instant a recovery manager can expect requests to succeed again.
  simkit::Time all_up_by(simkit::Time now) const noexcept;

  /// Like all_up_by, but only windows on the listed nodes block recovery —
  /// a reader that needs one replica shouldn't wait for the other rack.
  simkit::Time nodes_up_by(std::span<const std::uint32_t> nodes,
                           simkit::Time now) const noexcept;

  /// Did a scrubbing crash hit `io_node` in (t0, t1]?  A checkpoint copy
  /// committed at t0 that stripes over this node is untrustworthy at t1 if
  /// so — the crash destroyed the node's stored data.
  bool node_scrubbed_in(std::size_t io_node, simkit::Time t0,
                        simkit::Time t1) const noexcept;

  // -- counters -----------------------------------------------------------
  std::uint64_t transient_errors() const noexcept { return transient_errors_; }
  std::uint64_t rejected_requests() const noexcept {
    return rejected_requests_;
  }
  /// Markov disk-state entries (healthy excluded), split by severity.
  std::uint64_t sticky_transitions() const noexcept {
    return sticky_transitions_;
  }
  std::uint64_t stuck_transitions() const noexcept {
    return stuck_transitions_;
  }

 private:
  static std::uint64_t key(std::size_t node, std::uint32_t disk) {
    return (static_cast<std::uint64_t>(node) << 32) | disk;
  }

  simkit::Task<void> arm_crash(std::size_t node, bool scrub);
  simkit::Task<void> clear_crash(std::size_t node);
  simkit::Task<void> arm_episode(std::uint64_t disk_key, double factor);
  simkit::Task<void> clear_episode(std::uint64_t disk_key);
  simkit::Task<void> markov_step(std::uint64_t disk_key, double factor,
                                 int state);
  void schedule_markov(simkit::Engine& eng);

  InjectionPlan plan_;
  simkit::Rng rng_;
  bool started_ = false;
  // Overlapping windows/episodes nest: a node is down while its count is
  // positive; a disk reverts to 1.0 only when its last episode ends.
  std::vector<int> down_;
  std::map<std::uint64_t, int> episode_depth_;
  std::map<std::uint64_t, hw::DiskModel*> disks_;
  std::vector<CrashListener> crash_listeners_;
  std::vector<RecoveryListener> recovery_listeners_;
  std::uint64_t transient_errors_ = 0;
  std::uint64_t rejected_requests_ = 0;
  std::uint64_t sticky_transitions_ = 0;
  std::uint64_t stuck_transitions_ = 0;
  // Resolved once in start(); null when no registry is installed.  Metric
  // increments piggyback on existing events so observation never changes
  // the schedule.
  metrics::Counter* m_crashes_ = nullptr;
  metrics::Counter* m_transients_ = nullptr;
  metrics::Counter* m_rejections_ = nullptr;
  metrics::Counter* m_disk_transitions_ = nullptr;
};

}  // namespace fault
