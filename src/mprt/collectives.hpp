// mprt/collectives.hpp — collective operations over point-to-point.
//
// Real algorithms (MPICH-style binomial trees, dissemination barrier,
// shifted pairwise exchange), so collective cost scales with log P or P
// exactly as it did on the paper's machines.  All ranks must call each
// collective in the same order (SPMD), which keeps the internal tag
// sequence aligned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mprt/comm.hpp"
#include "simkit/task.hpp"

namespace mprt {

/// Dissemination barrier: ceil(log2 P) rounds, works for any P.
simkit::Task<void> barrier(Comm& c);

/// Binomial-tree broadcast of `bytes` from `root`.  If `buf` is non-empty
/// (size == bytes) it carries real content: the root's bytes arrive in
/// every rank's buf.
simkit::Task<void> bcast(Comm& c, Rank root, std::uint64_t bytes,
                         std::span<std::byte> buf = {});

/// Gather per-rank blocks to `root`.  Returns P messages indexed by rank
/// at the root (self included); empty vector elsewhere.
simkit::Task<std::vector<Message>> gatherv(
    Comm& c, Rank root, std::uint64_t my_bytes,
    std::span<const std::byte> payload = {});

/// Personalized all-to-all: rank r sends send_bytes[d] to each rank d.
/// Returns P messages indexed by source.  `payloads`, when non-empty,
/// supplies per-destination real content.
///
/// Routing follows the cluster's CollectiveTopology: kFlat is the
/// historical shifted pairwise exchange (P messages per rank), kBruck
/// store-and-forwards in ceil(log2 P) rounds, kTwoLevel routes through
/// group leaders (~2P + A^2 messages total for A groups).  All three
/// deliver identical buffers; only message counts and timing differ.
/// Wire traffic is metered as mprt.alltoall.msgs / mprt.alltoall.bytes
/// when a metrics registry is installed.
///
/// Parameters are taken BY VALUE deliberately: a coroutine must not bind
/// references to caller temporaries (and GCC 12 additionally miscompiles
/// non-trivially-destructible default arguments of coroutine calls).
simkit::Task<std::vector<Message>> alltoallv(
    Comm& c, std::vector<std::uint64_t> send_bytes,
    std::vector<std::span<const std::byte>> payloads = {});

/// Effective kTwoLevel group width for a P-rank cluster: the topology's
/// group_size clamped to [1, P], or ceil(sqrt(P)) when it is 0.
int two_level_group_width(int p, const CollectiveTopology& t);

/// Group-leader ranks (0, W, 2W, ...) for a P-rank cluster at width W.
/// These are also the aggregator ranks of the hierarchical two-phase
/// I/O path (pario::TwoPhase under a kTwoLevel topology).
std::vector<Rank> two_level_leaders(int p, int width);

enum class ReduceOp : std::uint8_t { kSum, kMin, kMax };

/// Allreduce over doubles (binomial reduce to rank 0, then broadcast).
simkit::Task<void> allreduce(Comm& c, std::span<double> values, ReduceOp op);

}  // namespace mprt
