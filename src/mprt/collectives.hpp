// mprt/collectives.hpp — collective operations over point-to-point.
//
// Real algorithms (MPICH-style binomial trees, dissemination barrier,
// shifted pairwise exchange), so collective cost scales with log P or P
// exactly as it did on the paper's machines.  All ranks must call each
// collective in the same order (SPMD), which keeps the internal tag
// sequence aligned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mprt/comm.hpp"
#include "simkit/task.hpp"

namespace mprt {

/// Dissemination barrier: ceil(log2 P) rounds, works for any P.
simkit::Task<void> barrier(Comm& c);

/// Binomial-tree broadcast of `bytes` from `root`.  If `buf` is non-empty
/// (size == bytes) it carries real content: the root's bytes arrive in
/// every rank's buf.
simkit::Task<void> bcast(Comm& c, Rank root, std::uint64_t bytes,
                         std::span<std::byte> buf = {});

/// Gather per-rank blocks to `root`.  Returns P messages indexed by rank
/// at the root (self included); empty vector elsewhere.
simkit::Task<std::vector<Message>> gatherv(
    Comm& c, Rank root, std::uint64_t my_bytes,
    std::span<const std::byte> payload = {});

/// Personalized all-to-all: rank r sends send_bytes[d] to each rank d.
/// Returns P messages indexed by source.  `payloads`, when non-empty,
/// supplies per-destination real content.
///
/// Parameters are taken BY VALUE deliberately: a coroutine must not bind
/// references to caller temporaries (and GCC 12 additionally miscompiles
/// non-trivially-destructible default arguments of coroutine calls).
simkit::Task<std::vector<Message>> alltoallv(
    Comm& c, std::vector<std::uint64_t> send_bytes,
    std::vector<std::span<const std::byte>> payloads = {});

enum class ReduceOp : std::uint8_t { kSum, kMin, kMax };

/// Allreduce over doubles (binomial reduce to rank 0, then broadcast).
simkit::Task<void> allreduce(Comm& c, std::span<double> values, ReduceOp op);

}  // namespace mprt
