#include "mprt/collectives.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "metrics/metrics.hpp"

namespace mprt {

simkit::Task<void> barrier(Comm& c) {
  const int p = c.size();
  if (p == 1) co_return;
  const int tag = c.next_collective_tag();
  const Rank r = c.rank();
  for (int k = 1; k < p; k <<= 1) {
    const Rank dst = (r + k) % p;
    const Rank src = (r - k % p + p) % p;
    co_await c.send(dst, tag, 0);
    (void)co_await c.recv(src, tag);
  }
}

simkit::Task<void> bcast(Comm& c, Rank root, std::uint64_t bytes,
                         std::span<std::byte> buf) {
  assert(buf.empty() || buf.size() == bytes);
  const int p = c.size();
  if (p == 1) co_return;
  const int tag = c.next_collective_tag();
  const Rank r = c.rank();
  const Rank rel = (r - root + p) % p;

  // Receive from parent (non-root only).
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const Rank parent = ((rel - mask) + root) % p;
      Message m = co_await c.recv(parent, tag);
      if (!buf.empty() && !m.payload.empty()) {
        std::memcpy(buf.data(), m.payload.data(),
                    std::min<std::size_t>(buf.size(), m.payload.size()));
      }
      break;
    }
    mask <<= 1;
  }
  // Forward to children.
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const Rank child = (rel + mask + root) % p;
      const std::span<const std::byte> view = buf;  // no ternary: GCC 12
      co_await c.send(child, tag, bytes, view);
    }
    mask >>= 1;
  }
}

simkit::Task<std::vector<Message>> gatherv(Comm& c, Rank root,
                                           std::uint64_t my_bytes,
                                           std::span<const std::byte> payload) {
  const int p = c.size();
  const int tag = c.next_collective_tag();
  std::vector<Message> out;
  if (c.rank() == root) {
    out.resize(static_cast<std::size_t>(p));
    Message self;
    self.src = root;
    self.tag = tag;
    self.bytes = my_bytes;
    self.payload.assign(payload.begin(), payload.end());
    out[static_cast<std::size_t>(root)] = std::move(self);
    for (int i = 1; i < p; ++i) {
      Message m = co_await c.recv(kAnySource, tag);
      out[static_cast<std::size_t>(m.src)] = std::move(m);
    }
  } else {
    co_await c.send(root, tag, my_bytes, payload);
  }
  co_return out;
}

namespace {

/// Wire-traffic instruments for one alltoallv call (any routing kind);
/// null when metrics are off.  `bytes` counts simulated wire volume
/// including the 32-byte point-to-point envelope, so routing overhead
/// (frame headers, forwarding hops) is visible, not just payload.
struct A2aMeters {
  A2aMeters() {
    if (metrics::Registry* r = metrics::current()) {
      msgs = &r->counter("mprt.alltoall.msgs");
      bytes = &r->counter("mprt.alltoall.bytes");
    }
  }
  void note(std::uint64_t sim_bytes) {
    if (msgs) {
      msgs->inc();
      bytes->inc(sim_bytes + 32);
    }
  }
  metrics::Counter* msgs = nullptr;
  metrics::Counter* bytes = nullptr;
};

/// A personalized block in flight through a routed exchange.  Wire record:
/// [src u32][dst u32][sim_bytes u64][payload_len u64][payload bytes].
/// sim_bytes is the block's simulated size; the payload carries only what
/// the caller materialized (possibly nothing), so a frame's real length
/// is at most its simulated length.
struct Block {
  Rank src = -1;
  Rank dst = -1;
  std::uint64_t sim_bytes = 0;
  std::vector<std::byte> payload;
};

constexpr std::size_t kBlockHeader = 24;

/// Serialize blocks into `frame` and return the frame's SIMULATED size
/// via `sim` (header per record + sim_bytes, whether or not the payload
/// was materialized) — the honest wire cost of routed aggregation.
void encode_blocks(const std::vector<Block>& blocks,
                   std::vector<std::byte>& frame, std::uint64_t& sim) {
  frame.clear();
  sim = 0;
  std::size_t real = 0;
  for (const auto& b : blocks) real += kBlockHeader + b.payload.size();
  frame.reserve(real);
  for (const auto& b : blocks) {
    std::uint32_t hdr32[2] = {static_cast<std::uint32_t>(b.src),
                              static_cast<std::uint32_t>(b.dst)};
    std::uint64_t hdr64[2] = {b.sim_bytes, b.payload.size()};
    const auto* p32 = reinterpret_cast<const std::byte*>(hdr32);
    frame.insert(frame.end(), p32, p32 + 8);
    const auto* p64 = reinterpret_cast<const std::byte*>(hdr64);
    frame.insert(frame.end(), p64, p64 + 16);
    frame.insert(frame.end(), b.payload.begin(), b.payload.end());
    sim += kBlockHeader + b.sim_bytes;
  }
}

std::vector<Block> decode_blocks(std::span<const std::byte> frame) {
  std::vector<Block> out;
  std::size_t cur = 0;
  while (cur + kBlockHeader <= frame.size()) {
    std::uint32_t hdr32[2];
    std::uint64_t hdr64[2];
    std::memcpy(hdr32, frame.data() + cur, 8);
    std::memcpy(hdr64, frame.data() + cur + 8, 16);
    cur += kBlockHeader;
    Block b;
    b.src = static_cast<Rank>(hdr32[0]);
    b.dst = static_cast<Rank>(hdr32[1]);
    b.sim_bytes = hdr64[0];
    const auto len = static_cast<std::size_t>(hdr64[1]);
    assert(cur + len <= frame.size());
    b.payload.assign(frame.begin() + static_cast<std::ptrdiff_t>(cur),
                     frame.begin() + static_cast<std::ptrdiff_t>(cur + len));
    cur += len;
    out.push_back(std::move(b));
  }
  return out;
}

/// Rank r's outbound blocks (self excluded — delivered locally), with
/// zero-size blocks skipped: routed topologies do not pay wire headers
/// for nothing-to-say pairs.  Receivers reconstruct the empty messages.
std::vector<Block> build_blocks(
    Rank r, int p, const std::vector<std::uint64_t>& send_bytes,
    const std::vector<std::span<const std::byte>>& payloads) {
  std::vector<Block> out;
  for (int d = 0; d < p; ++d) {
    if (d == r) continue;
    const auto du = static_cast<std::size_t>(d);
    if (send_bytes[du] == 0) continue;
    Block b;
    b.src = r;
    b.dst = d;
    b.sim_bytes = send_bytes[du];
    if (!payloads.empty()) {
      b.payload.assign(payloads[du].begin(), payloads[du].end());
    }
    out.push_back(std::move(b));
  }
  return out;
}

Message block_to_message(Block b, int tag) {
  Message m;
  m.src = b.src;
  m.tag = tag;
  m.bytes = b.sim_bytes;
  m.payload = std::move(b.payload);
  return m;
}

/// Fill the self slot and any source that sent nothing, so every routing
/// kind returns the same shape the flat exchange does: P messages indexed
/// by source, empty ones included.
void fill_missing(std::vector<Message>& out, Rank r, int p, int tag,
                  const std::vector<std::uint64_t>& send_bytes,
                  const std::vector<std::span<const std::byte>>& payloads) {
  Message self;
  self.src = r;
  self.tag = tag;
  self.bytes = send_bytes[static_cast<std::size_t>(r)];
  if (!payloads.empty()) {
    const auto& pay = payloads[static_cast<std::size_t>(r)];
    self.payload.assign(pay.begin(), pay.end());
  }
  out[static_cast<std::size_t>(r)] = std::move(self);
  for (int s = 0; s < p; ++s) {
    Message& m = out[static_cast<std::size_t>(s)];
    if (m.src < 0) {
      m.src = s;
      m.tag = tag;
    }
  }
}

/// Bruck store-and-forward: ceil(log2 P) rounds; in round k every rank
/// ships the blocks whose remaining relative distance has bit k set to
/// rank + 2^k.  P * ceil(log2 P) wire messages total — each block hops
/// (and pays the network) once per set bit of its distance.
simkit::Task<std::vector<Message>> alltoallv_bruck(
    Comm& c, std::vector<std::uint64_t> send_bytes,
    std::vector<std::span<const std::byte>> payloads) {
  const int p = c.size();
  const Rank r = c.rank();
  A2aMeters meters;
  std::vector<Message> out(static_cast<std::size_t>(p));
  std::vector<Block> items = build_blocks(r, p, send_bytes, payloads);
  int last_tag = Comm::kCollectiveTagBase;
  for (int k = 1; k < p; k <<= 1) {
    const int tag = c.next_collective_tag();
    last_tag = tag;
    const Rank dst = (r + k) % p;
    const Rank src = (r - k + p) % p;
    std::vector<Block> fwd;
    std::vector<Block> keep;
    for (auto& b : items) {
      const int rel = (b.dst - r + p) % p;
      if (rel & k) {
        fwd.push_back(std::move(b));
      } else {
        keep.push_back(std::move(b));
      }
    }
    items = std::move(keep);
    std::vector<std::byte> frame;
    std::uint64_t sim = 0;
    encode_blocks(fwd, frame, sim);
    meters.note(sim);
    co_await c.send(dst, tag, sim, frame);
    Message m = co_await c.recv(src, tag);
    auto arrived = decode_blocks(m.payload);
    for (auto& b : arrived) {
      if (b.dst == r) {
        out[static_cast<std::size_t>(b.src)] =
            block_to_message(std::move(b), tag);
      } else {
        items.push_back(std::move(b));
      }
    }
  }
  assert(items.empty());
  fill_missing(out, r, p, last_tag, send_bytes, payloads);
  co_return out;
}

/// Two-level leader routing: members ship all their blocks to the group
/// leader (one message), leaders exchange pairwise (A^2), leaders deliver
/// to members (one message each) — ~2P + A^2 wire messages instead of
/// P^2, at the price of every byte crossing the network an extra time.
simkit::Task<std::vector<Message>> alltoallv_twolevel(
    Comm& c, std::vector<std::uint64_t> send_bytes,
    std::vector<std::span<const std::byte>> payloads) {
  const int p = c.size();
  const Rank r = c.rank();
  A2aMeters meters;
  const int width = two_level_group_width(p, c.topology());
  const int nl = (p + width - 1) / width;
  const Rank my_leader = r - r % width;
  const int li = r / width;
  const int tag_up = c.next_collective_tag();
  const int tag_x = c.next_collective_tag();
  const int tag_down = c.next_collective_tag();

  std::vector<Message> out(static_cast<std::size_t>(p));
  std::vector<Block> mine = build_blocks(r, p, send_bytes, payloads);

  if (r != my_leader) {
    std::vector<std::byte> frame;
    std::uint64_t sim = 0;
    encode_blocks(mine, frame, sim);
    meters.note(sim);
    co_await c.send(my_leader, tag_up, sim, frame);
    Message down = co_await c.recv(my_leader, tag_down);
    auto arrived = decode_blocks(down.payload);
    for (auto& b : arrived) {
      assert(b.dst == r);
      out[static_cast<std::size_t>(b.src)] =
          block_to_message(std::move(b), tag_down);
    }
  } else {
    // Collect the group's blocks (members in rank order).
    std::vector<Block> pool = std::move(mine);
    const Rank group_end = std::min(my_leader + width, p);
    for (Rank mr = my_leader + 1; mr < group_end; ++mr) {
      Message up = co_await c.recv(mr, tag_up);
      auto arrived = decode_blocks(up.payload);
      for (auto& b : arrived) pool.push_back(std::move(b));
    }
    // Bucket by destination group.
    std::vector<std::vector<Block>> per_group(static_cast<std::size_t>(nl));
    std::vector<Block> local;
    for (auto& b : pool) {
      const int g = b.dst / width;
      if (g == li) {
        local.push_back(std::move(b));
      } else {
        per_group[static_cast<std::size_t>(g)].push_back(std::move(b));
      }
    }
    // Shifted pairwise exchange among leaders (eager sends: the
    // sequential send-then-recv per step cannot deadlock).
    for (int k = 1; k < nl; ++k) {
      const int gd = (li + k) % nl;
      const int gs = (li - k + nl) % nl;
      const Rank dst_leader = gd * width;
      const Rank src_leader = gs * width;
      std::vector<std::byte> frame;
      std::uint64_t sim = 0;
      encode_blocks(per_group[static_cast<std::size_t>(gd)], frame, sim);
      meters.note(sim);
      co_await c.send(dst_leader, tag_x, sim, frame);
      Message m = co_await c.recv(src_leader, tag_x);
      auto arrived = decode_blocks(m.payload);
      for (auto& b : arrived) local.push_back(std::move(b));
    }
    // Deliver within my group.
    std::vector<std::vector<Block>> per_member(
        static_cast<std::size_t>(group_end - my_leader));
    for (auto& b : local) {
      if (b.dst == r) {
        out[static_cast<std::size_t>(b.src)] =
            block_to_message(std::move(b), tag_down);
      } else {
        per_member[static_cast<std::size_t>(b.dst - my_leader)].push_back(
            std::move(b));
      }
    }
    for (Rank mr = my_leader + 1; mr < group_end; ++mr) {
      std::vector<std::byte> frame;
      std::uint64_t sim = 0;
      encode_blocks(per_member[static_cast<std::size_t>(mr - my_leader)],
                    frame, sim);
      meters.note(sim);
      co_await c.send(mr, tag_down, sim, frame);
    }
  }
  fill_missing(out, r, p, tag_down, send_bytes, payloads);
  co_return out;
}

/// The historical flat exchange, kept byte-identical (same single tag,
/// same shifted pairwise order, self included) for default-topology runs.
simkit::Task<std::vector<Message>> alltoallv_flat(
    Comm& c, std::vector<std::uint64_t> send_bytes,
    std::vector<std::span<const std::byte>> payloads) {
  const int p = c.size();
  const int tag = c.next_collective_tag();
  const Rank r = c.rank();
  A2aMeters meters;
  std::vector<Message> out(static_cast<std::size_t>(p));

  // Shifted pairwise exchange: step k talks to (r+k) / (r-k).  Eager sends
  // make the sequential send-then-recv per step deadlock-free.
  for (int k = 0; k < p; ++k) {
    const Rank dst = (r + k) % p;
    const Rank src = (r - k % p + p) % p;
    const auto d = static_cast<std::size_t>(dst);
    // Plain if, not a ternary: GCC 12 miscompiles conditional-expression
    // operands inside co_await argument lists.
    std::span<const std::byte> pay;
    if (!payloads.empty()) pay = payloads[d];
    meters.note(send_bytes[d]);
    co_await c.send(dst, tag, send_bytes[d], pay);
    Message m = co_await c.recv(src, tag);
    out[static_cast<std::size_t>(src)] = std::move(m);
  }
  co_return out;
}

}  // namespace

int two_level_group_width(int p, const CollectiveTopology& t) {
  if (p <= 1) return 1;
  int g = t.group_size;
  if (g <= 0) {
    g = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(p))));
  }
  return std::clamp(g, 1, p);
}

std::vector<Rank> two_level_leaders(int p, int width) {
  std::vector<Rank> out;
  for (Rank r = 0; r < p; r += width) out.push_back(r);
  return out;
}

simkit::Task<std::vector<Message>> alltoallv(
    Comm& c, std::vector<std::uint64_t> send_bytes,
    std::vector<std::span<const std::byte>> payloads) {
  assert(send_bytes.size() == static_cast<std::size_t>(c.size()));
  assert(payloads.empty() ||
         payloads.size() == static_cast<std::size_t>(c.size()));
  const CollectiveTopology::Kind kind = c.topology().kind;
  if (kind == CollectiveTopology::Kind::kBruck) {
    co_return co_await alltoallv_bruck(c, std::move(send_bytes),
                                       std::move(payloads));
  }
  if (kind == CollectiveTopology::Kind::kTwoLevel) {
    co_return co_await alltoallv_twolevel(c, std::move(send_bytes),
                                          std::move(payloads));
  }
  co_return co_await alltoallv_flat(c, std::move(send_bytes),
                                    std::move(payloads));
}

namespace {
void combine(ReduceOp op, std::span<double> acc,
             std::span<const double> in) {
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::kSum: acc[i] += in[i]; break;
      case ReduceOp::kMin: acc[i] = std::min(acc[i], in[i]); break;
      case ReduceOp::kMax: acc[i] = std::max(acc[i], in[i]); break;
    }
  }
}
}  // namespace

simkit::Task<void> allreduce(Comm& c, std::span<double> values,
                             ReduceOp op) {
  const int p = c.size();
  if (p == 1) co_return;
  const int tag = c.next_collective_tag();
  const Rank r = c.rank();
  const std::uint64_t bytes = values.size() * sizeof(double);

  // Binomial reduce to rank 0.
  int mask = 1;
  while (mask < p) {
    if (r & mask) {
      co_await c.send(r - mask, tag, bytes, std::as_bytes(values));
      break;
    }
    if (r + mask < p) {
      Message m = co_await c.recv(r + mask, tag);
      assert(m.payload.size() == bytes);
      combine(op, values,
              std::span<const double>(
                  reinterpret_cast<const double*>(m.payload.data()),
                  values.size()));
    }
    mask <<= 1;
  }
  co_await bcast(c, 0, bytes, std::as_writable_bytes(values));
}

}  // namespace mprt
