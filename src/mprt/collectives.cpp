#include "mprt/collectives.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mprt {

simkit::Task<void> barrier(Comm& c) {
  const int p = c.size();
  if (p == 1) co_return;
  const int tag = c.next_collective_tag();
  const Rank r = c.rank();
  for (int k = 1; k < p; k <<= 1) {
    const Rank dst = (r + k) % p;
    const Rank src = (r - k % p + p) % p;
    co_await c.send(dst, tag, 0);
    (void)co_await c.recv(src, tag);
  }
}

simkit::Task<void> bcast(Comm& c, Rank root, std::uint64_t bytes,
                         std::span<std::byte> buf) {
  assert(buf.empty() || buf.size() == bytes);
  const int p = c.size();
  if (p == 1) co_return;
  const int tag = c.next_collective_tag();
  const Rank r = c.rank();
  const Rank rel = (r - root + p) % p;

  // Receive from parent (non-root only).
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const Rank parent = ((rel - mask) + root) % p;
      Message m = co_await c.recv(parent, tag);
      if (!buf.empty() && !m.payload.empty()) {
        std::memcpy(buf.data(), m.payload.data(),
                    std::min<std::size_t>(buf.size(), m.payload.size()));
      }
      break;
    }
    mask <<= 1;
  }
  // Forward to children.
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const Rank child = (rel + mask + root) % p;
      const std::span<const std::byte> view = buf;  // no ternary: GCC 12
      co_await c.send(child, tag, bytes, view);
    }
    mask >>= 1;
  }
}

simkit::Task<std::vector<Message>> gatherv(Comm& c, Rank root,
                                           std::uint64_t my_bytes,
                                           std::span<const std::byte> payload) {
  const int p = c.size();
  const int tag = c.next_collective_tag();
  std::vector<Message> out;
  if (c.rank() == root) {
    out.resize(static_cast<std::size_t>(p));
    Message self;
    self.src = root;
    self.tag = tag;
    self.bytes = my_bytes;
    self.payload.assign(payload.begin(), payload.end());
    out[static_cast<std::size_t>(root)] = std::move(self);
    for (int i = 1; i < p; ++i) {
      Message m = co_await c.recv(kAnySource, tag);
      out[static_cast<std::size_t>(m.src)] = std::move(m);
    }
  } else {
    co_await c.send(root, tag, my_bytes, payload);
  }
  co_return out;
}

simkit::Task<std::vector<Message>> alltoallv(
    Comm& c, std::vector<std::uint64_t> send_bytes,
    std::vector<std::span<const std::byte>> payloads) {
  const int p = c.size();
  assert(send_bytes.size() == static_cast<std::size_t>(p));
  assert(payloads.empty() || payloads.size() == static_cast<std::size_t>(p));
  const int tag = c.next_collective_tag();
  const Rank r = c.rank();
  std::vector<Message> out(static_cast<std::size_t>(p));

  // Shifted pairwise exchange: step k talks to (r+k) / (r-k).  Eager sends
  // make the sequential send-then-recv per step deadlock-free.
  for (int k = 0; k < p; ++k) {
    const Rank dst = (r + k) % p;
    const Rank src = (r - k % p + p) % p;
    const auto d = static_cast<std::size_t>(dst);
    // Plain if, not a ternary: GCC 12 miscompiles conditional-expression
    // operands inside co_await argument lists.
    std::span<const std::byte> pay;
    if (!payloads.empty()) pay = payloads[d];
    co_await c.send(dst, tag, send_bytes[d], pay);
    Message m = co_await c.recv(src, tag);
    out[static_cast<std::size_t>(src)] = std::move(m);
  }
  co_return out;
}

namespace {
void combine(ReduceOp op, std::span<double> acc,
             std::span<const double> in) {
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::kSum: acc[i] += in[i]; break;
      case ReduceOp::kMin: acc[i] = std::min(acc[i], in[i]); break;
      case ReduceOp::kMax: acc[i] = std::max(acc[i], in[i]); break;
    }
  }
}
}  // namespace

simkit::Task<void> allreduce(Comm& c, std::span<double> values,
                             ReduceOp op) {
  const int p = c.size();
  if (p == 1) co_return;
  const int tag = c.next_collective_tag();
  const Rank r = c.rank();
  const std::uint64_t bytes = values.size() * sizeof(double);

  // Binomial reduce to rank 0.
  int mask = 1;
  while (mask < p) {
    if (r & mask) {
      co_await c.send(r - mask, tag, bytes, std::as_bytes(values));
      break;
    }
    if (r + mask < p) {
      Message m = co_await c.recv(r + mask, tag);
      assert(m.payload.size() == bytes);
      combine(op, values,
              std::span<const double>(
                  reinterpret_cast<const double*>(m.payload.data()),
                  values.size()));
    }
    mask <<= 1;
  }
  co_await bcast(c, 0, bytes, std::as_writable_bytes(values));
}

}  // namespace mprt
