// mprt/comm.hpp — message-passing runtime over the simulated machine.
//
// An NX/MPL-flavoured runtime: a Cluster maps ranks onto compute nodes
// (one process per node, as the paper's applications ran) and each rank
// owns a Comm endpoint with tagged, source-matched send/recv.  Sends are
// eager: the sender pays the network timing and completes; the message
// waits in the receiver's mailbox.  Collectives are built on top in
// collectives.hpp with real tree/pairwise algorithms so their network
// costs emerge from point-to-point timing.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hw/machine.hpp"
#include "simkit/engine.hpp"
#include "simkit/task.hpp"

namespace mprt {

using Rank = int;
inline constexpr Rank kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  Rank src = -1;
  int tag = 0;
  std::uint64_t bytes = 0;             // simulated size
  std::vector<std::byte> payload;      // real content (may be empty)
};

/// Routing policy for bulk collective exchanges: how alltoallv (and the
/// hierarchical two-phase I/O built on it) moves personalized blocks.
/// kFlat is the default and reproduces the historical behavior byte for
/// byte; the other kinds trade per-hop forwarding for message count, the
/// O(P^2) -> O(P + A^2) reduction DESIGN.md §16 describes.
struct CollectiveTopology {
  enum class Kind : std::uint8_t {
    kFlat,      // direct pairwise: P messages per rank
    kBruck,     // ceil(log2 P) store-and-forward rounds (sparse exchanges)
    kTwoLevel,  // leader-per-group routing: ~2P + A^2 messages total
  };
  Kind kind = Kind::kFlat;
  /// kTwoLevel group width G: ranks [g*G, (g+1)*G) route through their
  /// leader, rank g*G.  0 picks ceil(sqrt(P)), which minimizes the
  /// 2P + (P/G)^2*... message total for a square machine.
  int group_size = 0;
};

class Cluster;

/// Per-rank communication endpoint.
class Comm {
 public:
  Rank rank() const noexcept { return rank_; }
  int size() const noexcept;
  hw::NodeId node() const noexcept { return node_; }
  simkit::Engine& engine() noexcept;
  hw::Machine& machine() noexcept;
  Cluster& cluster() noexcept { return *cluster_; }

  /// Timed, eager send.  `bytes` is the simulated message size; `payload`
  /// optionally carries real content — empty, exactly `bytes` long, or
  /// (for framed collective routing) shorter than `bytes` when part of
  /// the simulated volume is timing-only.  Receivers must size content
  /// off payload.size(), never off bytes.
  simkit::Task<void> send(Rank dst, int tag, std::uint64_t bytes,
                          std::span<const std::byte> payload = {});

  /// Receive the first matching message (FIFO per matching stream).
  simkit::Task<Message> recv(Rank src = kAnySource, int tag = kAnyTag);

  /// Nonblocking send: returns immediately with a handle; join it (or use
  /// waitall) to wait for the network transfer to complete.  Payload
  /// bytes are captured at call time.
  simkit::ProcHandle isend(Rank dst, int tag, std::uint64_t bytes,
                           std::span<const std::byte> payload = {});

  /// Next tag for internal collective rounds; stays in lock-step across
  /// ranks because collectives are called in SPMD order.
  int next_collective_tag() { return kCollectiveTagBase + (coll_seq_++ & 0xFFFF); }

  /// The cluster-wide collective routing policy (see CollectiveTopology).
  const CollectiveTopology& topology() const noexcept;

  std::uint64_t messages_sent() const noexcept { return sent_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

  static constexpr int kCollectiveTagBase = 1 << 20;

 private:
  friend class Cluster;
  Comm(Cluster* cluster, Rank rank, hw::NodeId node)
      : cluster_(cluster), rank_(rank), node_(node) {}

  void deliver(Message m);
  static bool matches(const Message& m, Rank src, int tag) {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }

  struct PendingRecv {
    Rank src;
    int tag;
    std::optional<Message>* slot;
    std::coroutine_handle<> h;
  };

  Cluster* cluster_;
  Rank rank_;
  hw::NodeId node_;
  std::deque<Message> mailbox_;
  std::deque<PendingRecv> recvers_;
  int coll_seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

/// The "world": owns one Comm per rank and runs SPMD programs.
class Cluster {
 public:
  /// One process per compute node, ranks 0..nprocs-1.
  Cluster(hw::Machine& machine, int nprocs);

  int size() const noexcept { return static_cast<int>(comms_.size()); }
  hw::Machine& machine() noexcept { return machine_; }
  simkit::Engine& engine() noexcept { return machine_.engine(); }
  Comm& comm(Rank r) { return *comms_.at(static_cast<std::size_t>(r)); }

  /// Spawn `body(comm)` on every rank and wait for all of them.
  simkit::Task<void> run(
      const std::function<simkit::Task<void>(Comm&)>& body);

  /// Convenience: build the cluster, run one program, drive the engine.
  /// Returns the simulated completion time.
  static simkit::Time execute(
      hw::Machine& machine, int nprocs,
      const std::function<simkit::Task<void>(Comm&)>& body);

  /// Rendezvous board for collective constructors (e.g. pfs::SharedFile):
  /// rank 0 deposits a shared object under an agreed key (a collective
  /// tag), the other ranks pick it up after a barrier.
  std::map<int, std::shared_ptr<void>>& rendezvous() { return rendezvous_; }

  /// Collective routing policy for every Comm of this cluster.  Set it
  /// before spawning rank bodies — changing the topology between two
  /// collectives of a running SPMD program is undefined (ranks could
  /// route one collective two different ways).
  void set_topology(CollectiveTopology t) noexcept { topology_ = t; }
  const CollectiveTopology& topology() const noexcept { return topology_; }

 private:
  hw::Machine& machine_;
  std::vector<std::unique_ptr<Comm>> comms_;
  std::map<int, std::shared_ptr<void>> rendezvous_;
  CollectiveTopology topology_;
};

/// Wait for a set of nonblocking operations (MPI_Waitall).
inline simkit::Task<void> waitall(std::vector<simkit::ProcHandle> requests) {
  for (auto& r : requests) co_await r.join();
}

}  // namespace mprt
