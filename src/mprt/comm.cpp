#include "mprt/comm.hpp"

#include <utility>

#include "simkit/combinators.hpp"

namespace mprt {

int Comm::size() const noexcept { return cluster_->size(); }
simkit::Engine& Comm::engine() noexcept { return cluster_->engine(); }
hw::Machine& Comm::machine() noexcept { return cluster_->machine(); }
const CollectiveTopology& Comm::topology() const noexcept {
  return cluster_->topology();
}

simkit::Task<void> Comm::send(Rank dst, int tag, std::uint64_t bytes,
                              std::span<const std::byte> payload) {
  assert(dst >= 0 && dst < size());
  // Framed collective routing ships real headers + whatever content the
  // caller materialized, under a simulated size that includes the
  // timing-only remainder — so "at most bytes", not "exactly bytes".
  assert(payload.size() <= bytes);
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.bytes = bytes;
  m.payload.assign(payload.begin(), payload.end());
  ++sent_;
  bytes_sent_ += bytes;
  Comm& peer = cluster_->comm(dst);
  // Envelope + data on the wire; 0-byte messages still cost an envelope.
  co_await machine().network().transfer(node_, peer.node_, bytes + 32);
  peer.deliver(std::move(m));
}

namespace {
simkit::Task<void> isend_body(Comm& c, Rank dst, int tag,
                              std::uint64_t bytes,
                              std::vector<std::byte> data) {
  co_await c.send(dst, tag, bytes, data);
}
}  // namespace

simkit::ProcHandle Comm::isend(Rank dst, int tag, std::uint64_t bytes,
                               std::span<const std::byte> payload) {
  // The payload is captured NOW: coroutine by-value parameters are copied
  // into the frame at call time, so the caller may reuse its buffer
  // immediately (MPI buffered-send semantics).
  std::vector<std::byte> copy(payload.begin(), payload.end());
  return engine().spawn(isend_body(*this, dst, tag, bytes, std::move(copy)),
                        "isend");
}

void Comm::deliver(Message m) {
  for (auto it = recvers_.begin(); it != recvers_.end(); ++it) {
    if (matches(m, it->src, it->tag)) {
      it->slot->emplace(std::move(m));
      engine().schedule_at(engine().now(), it->h);
      recvers_.erase(it);
      return;
    }
  }
  mailbox_.push_back(std::move(m));
}

simkit::Task<Message> Comm::recv(Rank src, int tag) {
  // Fast path: already in the mailbox.
  for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
    if (matches(*it, src, tag)) {
      Message m = std::move(*it);
      mailbox_.erase(it);
      co_return m;
    }
  }
  struct RecvAwaiter {
    Comm& comm;
    Rank src;
    int tag;
    std::optional<Message> slot;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      comm.recvers_.push_back(PendingRecv{src, tag, &slot, h});
    }
    Message await_resume() { return std::move(*slot); }
  };
  co_return co_await RecvAwaiter{*this, src, tag, std::nullopt};
}

Cluster::Cluster(hw::Machine& machine, int nprocs) : machine_(machine) {
  assert(nprocs > 0);
  assert(static_cast<std::size_t>(nprocs) <=
         machine.config().compute_nodes &&
         "one process per compute node");
  comms_.reserve(static_cast<std::size_t>(nprocs));
  for (Rank r = 0; r < nprocs; ++r) {
    comms_.push_back(std::unique_ptr<Comm>(new Comm(
        this, r, machine.compute_node(static_cast<std::size_t>(r)))));
  }
}

simkit::Task<void> Cluster::run(
    const std::function<simkit::Task<void>(Comm&)>& body) {
  std::vector<simkit::Task<void>> ranks;
  ranks.reserve(comms_.size());
  for (auto& c : comms_) ranks.push_back(body(*c));
  co_await simkit::when_all(engine(), std::move(ranks));
}

simkit::Time Cluster::execute(
    hw::Machine& machine, int nprocs,
    const std::function<simkit::Task<void>(Comm&)>& body) {
  Cluster cluster(machine, nprocs);
  auto& eng = machine.engine();
  auto main = eng.spawn(cluster.run(body), "cluster_main");
  eng.run();
  return main.finish_time();
}

}  // namespace mprt
