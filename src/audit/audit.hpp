// audit/audit.hpp — simulation-wide data-integrity auditor.
//
// The simulator prices I/O but carries no payloads on the server side:
// correctness of *content* is asserted at the client layer, so a server
// that silently drops an acked write-behind buffer on a crash would
// never be caught.  The Ledger closes that hole: a per-(file, server,
// block) version record is advanced by every client-visible write ack
// and by every event that makes (or destroys) a durable copy, and every
// read is cross-checked against it.  Three violation classes:
//
//   * lost update — an acked write's data destroyed (crash invalidated
//     the writeback pool / redo log) before it ever became durable;
//   * stale read  — a read observing a block whose newest acked version
//     is known lost: in a real system this read returns old bytes;
//   * torn write  — a multi-block client write (one pwrite spanning
//     pieces) of which some pieces became durable and others were lost,
//     leaving a mixed-version range on disk after recovery.
//
// Mirrors the metrics:: idiom exactly: a thread_local `current()`
// pointer, RAII `Scope` installation, zero cost when no ledger is
// installed (one pointer load and branch), and observation-only —
// feeding the ledger never consumes simulated time or RNG state, so an
// audited run is byte-identical to an unaudited one.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace audit {

/// Aggregate results, mergeable across per-point ledgers.
struct Totals {
  std::uint64_t writes_acked = 0;
  std::uint64_t reads_checked = 0;
  std::uint64_t lost_updates = 0;    // acked-but-unflushed blocks destroyed
  std::uint64_t lost_bytes = 0;
  std::uint64_t stale_reads = 0;     // reads of a block with a lost update
  std::uint64_t torn_writes = 0;     // multi-block writes partially durable
  std::uint64_t scrub_destroyed = 0; // durable blocks destroyed by scrubs

  std::uint64_t violations() const noexcept {
    return lost_updates + stale_reads + torn_writes;
  }
  void merge(const Totals& o) noexcept {
    writes_acked += o.writes_acked;
    reads_checked += o.reads_checked;
    lost_updates += o.lost_updates;
    lost_bytes += o.lost_bytes;
    stale_reads += o.stale_reads;
    torn_writes += o.torn_writes;
    scrub_destroyed += o.scrub_destroyed;
  }
};

class Ledger {
 public:
  Ledger() = default;
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Open a torn-write group: one client pwrite spanning several server
  /// blocks shares a group id; 0 means "ungrouped" (single-piece write).
  std::uint64_t begin_group() noexcept { return ++next_group_; }

  /// A server acked one block of a client write.  `durable_at_ack` is
  /// true when the ack itself implies durability (write-through, a
  /// journaled redo append, or a synchronous server) — such blocks can
  /// never be lost by a plain crash, only destroyed by a scrub.
  void note_write_acked(std::uint64_t file, std::size_t server,
                        std::uint64_t block, std::uint64_t bytes,
                        bool durable_at_ack, std::uint64_t group = 0);

  /// A buffered block reached disk (drain / flush / journal replay).
  void note_durable(std::uint64_t file, std::size_t server,
                    std::uint64_t block);

  /// A crash destroyed a block the server had acked.  Counts a lost
  /// update only when the ledger itself believes the newest acked
  /// version was not yet durable — the independent cross-check against
  /// the server's own loss accounting.
  void note_lost(std::uint64_t file, std::size_t server,
                 std::uint64_t block, std::uint64_t bytes);

  /// A scrubbing crash destroyed everything `server` stored, durable
  /// copies included.
  void note_scrubbed(std::size_t server);

  /// A client read touched this block; flags a stale read if the
  /// newest acked version is known lost.
  void note_read(std::uint64_t file, std::size_t server,
                 std::uint64_t block);

  const Totals& totals() const noexcept { return totals_; }
  std::uint64_t violations() const noexcept { return totals_.violations(); }

 private:
  struct Key {
    std::uint64_t file = 0;
    std::uint64_t block = 0;
    std::uint32_t server = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      auto mix = [](std::uint64_t z) noexcept {
        z += 0x9E3779B97f4A7C15ULL;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
      };
      return static_cast<std::size_t>(
          mix(mix(mix(k.file) ^ k.block) ^ k.server));
    }
  };
  struct Record {
    std::uint64_t acked = 0;    // acked version counter
    std::uint64_t durable = 0;  // newest version known on disk
    std::uint64_t group = 0;    // group of the newest acked write
    bool lost = false;          // newest acked version destroyed
  };
  struct Group {
    std::uint64_t pending = 0;  // acked pieces not yet durable
    std::uint64_t durable = 0;
    std::uint64_t lost = 0;
    bool flagged = false;
  };

  void group_settle(std::uint64_t id, bool became_durable);

  std::unordered_map<Key, Record, KeyHash> records_;
  std::unordered_map<std::uint64_t, Group> groups_;
  std::uint64_t next_group_ = 0;
  Totals totals_;
};

/// The installed ledger, or nullptr when auditing is off (the default).
Ledger* current() noexcept;

/// RAII installation, nesting like metrics::Scope — a scenario body may
/// install its own ledger inside a `--audit` run's per-point one.
class Scope {
 public:
  explicit Scope(Ledger& l) noexcept;
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Ledger* prev_;
};

}  // namespace audit
