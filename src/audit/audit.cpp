#include "audit/audit.hpp"

namespace audit {

namespace {
thread_local Ledger* g_current = nullptr;
}  // namespace

Ledger* current() noexcept { return g_current; }

Scope::Scope(Ledger& l) noexcept : prev_(g_current) { g_current = &l; }
Scope::~Scope() { g_current = prev_; }

void Ledger::group_settle(std::uint64_t id, bool became_durable) {
  auto it = groups_.find(id);
  if (it == groups_.end()) return;
  Group& g = it->second;
  if (g.pending > 0) --g.pending;
  if (became_durable) {
    ++g.durable;
  } else {
    ++g.lost;
  }
  if (g.durable > 0 && g.lost > 0 && !g.flagged) {
    g.flagged = true;
    ++totals_.torn_writes;
  }
  // No pending pieces left: the group's fate is sealed (nothing can
  // still become durable or lost), so the record is no longer needed.
  if (g.pending == 0) groups_.erase(it);
}

void Ledger::note_write_acked(std::uint64_t file, std::size_t server,
                              std::uint64_t block, std::uint64_t bytes,
                              bool durable_at_ack, std::uint64_t group) {
  (void)bytes;
  Record& rec = records_[Key{file, block, static_cast<std::uint32_t>(server)}];
  // An overwrite supersedes a still-pending older version: the old
  // group piece resolves as neither durable nor lost.
  if (!rec.lost && rec.acked > rec.durable && rec.group != 0) {
    auto it = groups_.find(rec.group);
    if (it != groups_.end() && it->second.pending > 0 &&
        --it->second.pending == 0) {
      groups_.erase(it);
    }
  }
  ++rec.acked;
  rec.lost = false;  // fresh data supersedes any lost version
  ++totals_.writes_acked;
  if (durable_at_ack) {
    rec.durable = rec.acked;
    rec.group = 0;  // an all-durable group can never tear
  } else {
    rec.group = group;
    if (group != 0) ++groups_[group].pending;
  }
}

void Ledger::note_durable(std::uint64_t file, std::size_t server,
                          std::uint64_t block) {
  auto it =
      records_.find(Key{file, block, static_cast<std::uint32_t>(server)});
  if (it == records_.end()) return;
  Record& rec = it->second;
  if (rec.lost || rec.durable >= rec.acked) return;
  rec.durable = rec.acked;
  const std::uint64_t g = rec.group;
  rec.group = 0;
  if (g != 0) group_settle(g, /*became_durable=*/true);
}

void Ledger::note_lost(std::uint64_t file, std::size_t server,
                       std::uint64_t block, std::uint64_t bytes) {
  auto it =
      records_.find(Key{file, block, static_cast<std::uint32_t>(server)});
  if (it == records_.end()) return;
  Record& rec = it->second;
  // Only a version the ledger independently believes was acked but not
  // yet durable is a lost update — if the server claims loss on a block
  // the ledger saw drained, one side's accounting is wrong and the
  // mismatch shows up as counts that disagree in tests.
  if (rec.lost || rec.acked == 0 || rec.durable >= rec.acked) return;
  rec.lost = true;
  ++totals_.lost_updates;
  totals_.lost_bytes += bytes;
  const std::uint64_t g = rec.group;
  rec.group = 0;
  if (g != 0) group_settle(g, /*became_durable=*/false);
}

void Ledger::note_scrubbed(std::size_t server) {
  // Rare (one call per scrubbing crash); a full sweep is fine.  Order
  // independent: each record is flagged and counted exactly once.
  for (auto& [key, rec] : records_) {
    if (key.server != static_cast<std::uint32_t>(server)) continue;
    if (rec.acked == 0 || rec.lost) continue;
    rec.lost = true;
    rec.group = 0;
    ++totals_.scrub_destroyed;
  }
}

void Ledger::note_read(std::uint64_t file, std::size_t server,
                       std::uint64_t block) {
  ++totals_.reads_checked;
  auto it =
      records_.find(Key{file, block, static_cast<std::uint32_t>(server)});
  if (it != records_.end() && it->second.lost) ++totals_.stale_reads;
}

}  // namespace audit
