// hw/disk.hpp — mechanical disk service-time model.
//
// Models the three classical components of a disk access:
//   seek       — head movement, sub-linear (sqrt) in seek distance,
//   rotation   — half-revolution average latency on non-sequential access,
//   transfer   — bytes / media rate,
// plus a fixed controller overhead per request.  The model is stateful:
// it remembers the head position, so a stream of sequential requests pays
// seek + rotation only once — this is exactly the effect the paper's
// layout and collective-I/O optimizations exploit.
//
// The model computes durations; occupancy/queueing is handled by the
// caller (pfs::IoNode holds a simkit::Resource per disk arm).
#pragma once

#include <cstdint>
#include <string>

#include "simkit/time.hpp"

namespace hw {

struct DiskParams {
  std::string name;
  double track_to_track_seek_ms = 1.5;  // minimum (adjacent-track) seek
  double average_seek_ms = 10.0;        // manufacturer average (1/3 stroke)
  double rpm = 5400.0;                  // spindle speed
  double transfer_mb_per_s = 5.0;       // sustained media rate
  double controller_overhead_ms = 0.5;  // fixed per-request cost
  std::uint64_t capacity_bytes = 2ULL << 30;
  /// Zoned bit recording: outer tracks (low offsets) transfer up to
  /// `zoned_speedup` times faster than inner ones, interpolated linearly.
  /// 1.0 (default) disables zoning.
  double zoned_speedup = 1.0;

  /// 9 GB SSA drive as attached to the SP-2's PIOFS I/O nodes (4 each).
  static DiskParams sp2_ssa_9gb();
  /// RAID-3 array behind a Paragon I/O node.
  static DiskParams paragon_raid3();
};

enum class AccessKind : std::uint8_t { kRead, kWrite };

/// Where one access's service time went — filled on request so the
/// metrics layer can histogram seek vs transfer time separately (the
/// paper's layout/collective optimizations are exactly seek-avoidance).
struct AccessBreakdown {
  simkit::Duration seek = 0.0;
  simkit::Duration rotation = 0.0;
  simkit::Duration transfer = 0.0;
  simkit::Duration overhead = 0.0;  // controller + write settle + scaling
};

class DiskModel {
 public:
  explicit DiskModel(DiskParams params) : p_(std::move(params)) {}

  const DiskParams& params() const noexcept { return p_; }

  /// Service time for a request at byte offset `offset` of length `nbytes`.
  /// Advances the head to the end of the request.  `breakdown`, when
  /// non-null, receives the seek/rotation/transfer split (components sum
  /// to the returned duration).
  simkit::Duration access(std::uint64_t offset, std::uint64_t nbytes,
                          AccessKind kind,
                          AccessBreakdown* breakdown = nullptr);

  /// True if the next access at `offset` would be sequential (no seek).
  bool sequential_at(std::uint64_t offset) const noexcept {
    return offset == head_;
  }

  /// A synchronous commit (redo-log force) acks only once the sector is
  /// on the platter; by the time the next append is issued the commit
  /// point has rotated past the head, so that access pays rotational
  /// latency even though it is block-sequential on the track.  This is
  /// the classic sync-log penalty NVRAM and skip-sector layouts exist
  /// to hide.  One-shot: cleared by the next access.
  void note_sync_commit() noexcept { sync_gap_ = true; }

  std::uint64_t head_position() const noexcept { return head_; }
  void park() noexcept { head_ = 0; }

  /// Fault-injection hook: every access is stretched by this factor while
  /// a degradation episode is armed (1.0 = healthy, the default; a very
  /// large value models a stuck arm).  Set by fault::Injector's clock.
  double service_scale() const noexcept { return service_scale_; }
  void set_service_scale(double s) noexcept { service_scale_ = s; }

  /// Time for one full platter revolution.
  simkit::Duration revolution_time() const noexcept {
    return 60.0 / p_.rpm;
  }

 private:
  simkit::Duration seek_time(std::uint64_t from, std::uint64_t to) const;

  DiskParams p_;
  std::uint64_t head_ = 0;
  double service_scale_ = 1.0;
  bool sync_gap_ = false;
};

}  // namespace hw
