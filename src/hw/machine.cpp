#include "hw/machine.hpp"

#include <memory>

namespace hw {
namespace {

std::unique_ptr<Topology> make_topology(const MachineConfig& cfg) {
  const std::size_t n = cfg.total_nodes();
  switch (cfg.topology) {
    case TopologyKind::kMesh2D: {
      const std::uint32_t cols = cfg.mesh_cols;
      const auto rows = static_cast<std::uint32_t>((n + cols - 1) / cols);
      return std::make_unique<MeshTopology>(cols, rows);
    }
    case TopologyKind::kMultistageSwitch:
      return std::make_unique<SwitchTopology>(n);
  }
  return nullptr;
}

}  // namespace

Machine::Machine(simkit::Engine& eng, MachineConfig cfg)
    : eng_(eng), cfg_(std::move(cfg)) {
  cfg_.validate();
  net_ = std::make_unique<Network>(eng_, make_topology(cfg_), cfg_.net);
}

void MachineConfig::validate() const {
  if (compute_nodes == 0) {
    throw ConfigError("MachineConfig '" + name +
                      "': compute_nodes must be > 0");
  }
  if (io_nodes == 0) {
    throw ConfigError("MachineConfig '" + name + "': io_nodes must be > 0");
  }
  if (io_nodes_per_switch > io_nodes) {
    throw ConfigError("MachineConfig '" + name +
                      "': io_nodes_per_switch exceeds io_nodes");
  }
}

MachineConfig MachineConfig::paragon_small(std::size_t compute_nodes,
                                           std::size_t io_nodes) {
  MachineConfig m;
  m.name = "Paragon-56";
  m.compute_nodes = compute_nodes;
  m.io_nodes = io_nodes;
  // i860 XP: 75 MFLOPS peak; sustained application rates were ~1/3 of peak.
  m.cpu_mflops = 25.0;
  m.mem_copy_mb_per_s = 30.0;
  m.mem_bytes_per_node = 32ULL << 20;
  m.topology = TopologyKind::kMesh2D;
  m.mesh_cols = 4;  // the paper's 14x4 mesh
  m.net.link_mb_per_s = 70.0;  // 175 MB/s raw links, ~70 effective under NX
  m.net.per_hop_latency_us = 0.6;
  m.net.sw_overhead_us = 55.0;
  m.disk = DiskParams::paragon_raid3();
  m.io.stripe_unit_bytes = 64 * 1024;
  m.io.disks_per_io_node = 1;
  m.io.server_overhead_ms = 0.6;  // PFS daemon cost per request
  m.io.client_syscall_ms = 0.5;
  // I/O nodes carried 16 MB, mostly consumed by OSF/1 and the daemons.
  m.io.cache_bytes_per_io_node = 2ULL << 20;
  m.io.write_behind = true;  // Paragon was observed faster on writes
  return m;
}

MachineConfig MachineConfig::paragon_large(std::size_t compute_nodes,
                                           std::size_t io_nodes) {
  MachineConfig m = paragon_small(compute_nodes, io_nodes);
  m.name = "Paragon-512";
  m.mesh_cols = 16;
  return m;
}

MachineConfig MachineConfig::sp2(std::size_t compute_nodes) {
  MachineConfig m;
  m.name = "SP2-80";
  m.compute_nodes = compute_nodes;
  m.io_nodes = 4;  // four of five PIOFS server nodes usable for user files
  // RS/6000 Model 390 (POWER2 66 MHz): strong FP, ~50 MFLOPS sustained.
  m.cpu_mflops = 50.0;
  m.mem_copy_mb_per_s = 80.0;
  m.mem_bytes_per_node = 256ULL << 20;
  m.topology = TopologyKind::kMultistageSwitch;
  m.net.link_mb_per_s = 35.0;  // TB2 switch, ~35 MB/s effective under MPL
  m.net.per_hop_latency_us = 12.0;
  m.net.sw_overhead_us = 40.0;
  m.disk = DiskParams::sp2_ssa_9gb();
  m.io.stripe_unit_bytes = 32 * 1024;  // PIOFS BSU
  m.io.disks_per_io_node = 4;          // 4 x 9 GB SSA per server
  m.io.server_overhead_ms = 0.7;
  m.io.client_syscall_ms = 0.3;
  m.io.cache_bytes_per_io_node = 16ULL << 20;
  m.io.write_behind = false;  // SP-2 was observed faster on reads
  return m;
}

MachineConfig MachineConfig::paragon_xl(std::size_t compute_nodes,
                                        std::size_t io_nodes) {
  if (compute_nodes < 1024 || compute_nodes > 4096) {
    throw ConfigError("paragon_xl: compute_nodes must be in [1024, 4096]");
  }
  if (io_nodes < 64 || io_nodes > 128) {
    throw ConfigError("paragon_xl: io_nodes must be in [64, 128]");
  }
  MachineConfig m;
  m.name = "Paragon-XL";
  m.compute_nodes = compute_nodes;
  m.io_nodes = io_nodes;
  // Rack switches scope I/O failure domains: 8 servers share a switch,
  // so a rack event takes out a bounded slice of the I/O partition.
  m.io_nodes_per_switch = 8;
  // A generation past the i860: faster cores, but the interconnect
  // per-message software overhead shrinks far less than link bandwidth
  // grows — which is exactly why flat O(P^2) exchanges stop scaling.
  m.cpu_mflops = 200.0;
  m.mem_copy_mb_per_s = 400.0;
  m.mem_bytes_per_node = 256ULL << 20;
  m.topology = TopologyKind::kMultistageSwitch;
  m.net.link_mb_per_s = 300.0;
  m.net.per_hop_latency_us = 0.5;
  m.net.sw_overhead_us = 20.0;
  // Commodity drives of the same vintage: faster media, shorter seeks.
  m.disk.track_to_track_seek_ms = 0.8;
  m.disk.average_seek_ms = 5.0;
  m.disk.rpm = 7200.0;
  m.disk.transfer_mb_per_s = 40.0;
  m.disk.controller_overhead_ms = 0.2;
  m.disk.capacity_bytes = 64ULL << 30;
  m.io.stripe_unit_bytes = 64 * 1024;
  m.io.disks_per_io_node = 4;
  m.io.server_overhead_ms = 0.2;
  m.io.client_syscall_ms = 0.05;
  m.io.cache_bytes_per_io_node = 64ULL << 20;
  m.io.write_behind = true;
  return m;
}

}  // namespace hw
