#include "hw/disk.hpp"

#include <algorithm>
#include <cmath>

namespace hw {

DiskParams DiskParams::sp2_ssa_9gb() {
  DiskParams p;
  p.name = "SSA-9GB";
  p.track_to_track_seek_ms = 0.8;
  p.average_seek_ms = 8.0;
  p.rpm = 7200.0;
  p.transfer_mb_per_s = 7.0;
  p.controller_overhead_ms = 0.4;
  p.capacity_bytes = 9ULL << 30;
  return p;
}

DiskParams DiskParams::paragon_raid3() {
  DiskParams p;
  p.name = "Paragon-RAID3";
  p.track_to_track_seek_ms = 2.0;
  p.average_seek_ms = 14.0;
  p.rpm = 4500.0;
  // RAID-3 stripes every request over the whole array, so sequential
  // streaming outruns a single-spindle disk even though seeks are slower.
  p.transfer_mb_per_s = 8.0;
  p.controller_overhead_ms = 1.0;
  p.capacity_bytes = 4ULL << 30;
  return p;
}

simkit::Duration DiskModel::seek_time(std::uint64_t from,
                                      std::uint64_t to) const {
  if (from == to) return 0.0;
  const std::uint64_t dist = from > to ? from - to : to - from;
  const double frac = std::min(
      1.0, static_cast<double>(dist) / static_cast<double>(p_.capacity_bytes));
  // Sub-linear (square-root) seek profile anchored at track-to-track and
  // full-stroke ≈ 2x average seek.
  const double full_stroke_ms = 2.0 * p_.average_seek_ms;
  const double ms = p_.track_to_track_seek_ms +
                    (full_stroke_ms - p_.track_to_track_seek_ms) *
                        std::sqrt(frac);
  return simkit::milliseconds(ms);
}

simkit::Duration DiskModel::access(std::uint64_t offset, std::uint64_t nbytes,
                                   AccessKind kind,
                                   AccessBreakdown* breakdown) {
  simkit::Duration t = simkit::milliseconds(p_.controller_overhead_ms);
  simkit::Duration seek = 0.0;
  simkit::Duration rotation = 0.0;
  if (!sequential_at(offset)) {
    seek = seek_time(head_, offset);
    // Average rotational latency: half a revolution.
    rotation = 0.5 * revolution_time();
    t += seek + rotation;
  } else if (sync_gap_) {
    // Sequential on the track, but the previous synchronous commit let
    // the sector rotate past the head: pay the rotational latency, no
    // seek.
    rotation = 0.5 * revolution_time();
    t += rotation;
  }
  sync_gap_ = false;
  double rate = p_.transfer_mb_per_s * 1e6;
  if (p_.zoned_speedup > 1.0) {
    // Outer zone (offset 0) runs at zoned_speedup x the inner-zone rate;
    // the datasheet "sustained" rate is the zone average.
    const double frac = std::min(
        1.0, static_cast<double>(offset) /
                 static_cast<double>(p_.capacity_bytes));
    const double avg = (1.0 + p_.zoned_speedup) / 2.0;
    rate *= (p_.zoned_speedup - frac * (p_.zoned_speedup - 1.0)) / avg;
  }
  const simkit::Duration transfer = static_cast<double>(nbytes) / rate;
  t += transfer;
  // Writes settle marginally slower than reads on these drives (write
  // verify / head settle); 5% is within the envelope of 1990s datasheets.
  if (kind == AccessKind::kWrite) t *= 1.05;
  // Guarded so a healthy disk's timing stays bit-identical to a build
  // without fault injection at all.
  if (service_scale_ != 1.0) t *= service_scale_;
  head_ = offset + nbytes;
  if (breakdown) {
    breakdown->seek = seek;
    breakdown->rotation = rotation;
    breakdown->transfer = transfer;
    breakdown->overhead = t - seek - rotation - transfer;
  }
  return t;
}

}  // namespace hw
