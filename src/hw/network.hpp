// hw/network.hpp — interconnect timing model with endpoint contention.
//
// The model is deliberately endpoint-centric: each node owns a NIC modelled
// as a unit resource; a transfer serializes on the sender NIC for
// bytes/bandwidth, propagates with per-hop latency, then serializes on the
// receiver NIC for bytes/bandwidth.  For the I/O studies reproduced here
// the bottleneck is the handful of I/O-node endpoints, which this model
// captures; per-link wormhole contention is intentionally out of scope
// (see DESIGN.md §5.2 and bench_ablation_network).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "simkit/engine.hpp"
#include "simkit/resource.hpp"
#include "simkit/task.hpp"
#include "simkit/time.hpp"

namespace hw {

using NodeId = std::uint32_t;

struct NetParams {
  double link_mb_per_s = 50.0;      // effective per-NIC bandwidth
  double per_hop_latency_us = 1.0;  // router/switch hop latency
  double sw_overhead_us = 50.0;     // per-message software (send) overhead
};

/// Pure geometry: how many hops between two nodes.
class Topology {
 public:
  virtual ~Topology() = default;
  virtual std::uint32_t hops(NodeId a, NodeId b) const = 0;
  virtual std::size_t node_count() const = 0;
};

/// 2-D mesh, nodes numbered row-major — the Paragon layout.  I/O nodes sit
/// at the high end of the numbering (last rows), as service partitions did.
class MeshTopology final : public Topology {
 public:
  MeshTopology(std::uint32_t cols, std::uint32_t rows)
      : cols_(cols), rows_(rows) {
    assert(cols > 0 && rows > 0);
  }
  std::uint32_t hops(NodeId a, NodeId b) const override {
    const auto [ax, ay] = coords(a);
    const auto [bx, by] = coords(b);
    const std::uint32_t dx = ax > bx ? ax - bx : bx - ax;
    const std::uint32_t dy = ay > by ? ay - by : by - ay;
    return dx + dy;
  }
  std::size_t node_count() const override {
    return static_cast<std::size_t>(cols_) * rows_;
  }
  std::pair<std::uint32_t, std::uint32_t> coords(NodeId n) const {
    return {n % cols_, n / cols_};
  }

 private:
  std::uint32_t cols_;
  std::uint32_t rows_;
};

/// Multistage switch (SP-2): constant hop count between any two nodes.
class SwitchTopology final : public Topology {
 public:
  SwitchTopology(std::size_t nodes, std::uint32_t stages = 3)
      : nodes_(nodes), stages_(stages) {}
  std::uint32_t hops(NodeId a, NodeId b) const override {
    return a == b ? 0 : stages_;
  }
  std::size_t node_count() const override { return nodes_; }

 private:
  std::size_t nodes_;
  std::uint32_t stages_;
};

class Network {
 public:
  Network(simkit::Engine& eng, std::unique_ptr<Topology> topo,
          NetParams params)
      : eng_(eng), topo_(std::move(topo)), p_(params) {
    nics_.reserve(topo_->node_count());
    for (std::size_t i = 0; i < topo_->node_count(); ++i) {
      nics_.push_back(std::make_unique<simkit::Resource>(eng_, 1));
    }
  }

  const NetParams& params() const noexcept { return p_; }
  const Topology& topology() const noexcept { return *topo_; }
  std::size_t node_count() const noexcept { return nics_.size(); }

  simkit::Resource& nic(NodeId n) { return *nics_.at(n); }

  /// Pure (uncontended) one-way latency+serialization estimate.
  simkit::Duration base_transfer_time(NodeId src, NodeId dst,
                                      std::uint64_t bytes) const {
    return simkit::microseconds(p_.sw_overhead_us) +
           propagation(src, dst) +
           2.0 * serialization(bytes);
  }

  /// Timed transfer of `bytes` from `src` to `dst` with NIC contention.
  /// Local transfers pay only the software overhead and one memcpy-rate
  /// serialization.
  simkit::Task<void> transfer(NodeId src, NodeId dst, std::uint64_t bytes) {
    co_await eng_.delay(simkit::microseconds(p_.sw_overhead_us));
    if (src == dst) {
      co_await eng_.delay(serialization(bytes));
      co_return;
    }
    co_await nics_.at(src)->use_for(serialization(bytes));
    co_await eng_.delay(propagation(src, dst));
    co_await nics_.at(dst)->use_for(serialization(bytes));
  }

  simkit::Duration serialization(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / (p_.link_mb_per_s * 1e6);
  }
  simkit::Duration propagation(NodeId src, NodeId dst) const {
    return simkit::microseconds(p_.per_hop_latency_us) *
           static_cast<double>(topo_->hops(src, dst));
  }

 private:
  simkit::Engine& eng_;
  std::unique_ptr<Topology> topo_;
  NetParams p_;
  std::vector<std::unique_ptr<simkit::Resource>> nics_;
};

}  // namespace hw
