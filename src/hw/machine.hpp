// hw/machine.hpp — a whole platform: compute partition, I/O partition,
// interconnect, and the calibration constants for the I/O subsystem.
//
// Node numbering: compute nodes are 0..C-1, I/O nodes are C..C+I-1.  This
// mirrors the Paragon's service-partition layout (I/O nodes at the edge of
// the mesh) and keeps rank->node mapping trivial for the runtime.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/disk.hpp"
#include "hw/network.hpp"
#include "iosrv/config.hpp"
#include "simkit/engine.hpp"
#include "simkit/task.hpp"

namespace hw {

enum class TopologyKind : std::uint8_t { kMesh2D, kMultistageSwitch };

/// Typed error for impossible platform shapes.  Thrown by
/// MachineConfig::validate() (and therefore the Machine constructor)
/// instead of letting a zero-node partition trip asserts deep in pfs/mprt.
struct ConfigError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Calibration knobs for the parallel-file-system I/O path.  These are the
/// "architectural and software" constants the paper's effects hinge on;
/// pfs:: consumes them, bench_ablation_overhead sweeps them.
struct IoSubsysParams {
  std::uint64_t stripe_unit_bytes = 64 * 1024;  // PFS default 64 KB
  std::uint32_t disks_per_io_node = 1;
  double server_overhead_ms = 0.8;   // per request at the I/O node daemon
  double client_syscall_ms = 0.35;   // per call trap/marshal on the client
  std::uint64_t cache_bytes_per_io_node = 4ULL << 20;
  bool write_behind = true;          // buffered writes flushed by a daemon
  /// SCAN (elevator) disk scheduling at the I/O nodes instead of FIFO.
  bool scan_scheduling = false;
  /// Active I/O server knobs (cache replacement policy, pattern-driven
  /// read-ahead, pooled write-behind).  The defaults reproduce the
  /// legacy passive server byte for byte; see iosrv/config.hpp.
  iosrv::Config server;
};

struct MachineConfig {
  std::string name;
  std::size_t compute_nodes = 4;
  std::size_t io_nodes = 2;
  /// Failure-domain fan-in: consecutive I/O nodes share one rack switch,
  /// so a switch/rack fault takes all of them out together (fault::
  /// InjectionPlan's domain outages are scoped by this grouping).  0 (the
  /// default) puts every I/O node in its own domain — no correlated
  /// blast radius, and bit-identical behavior to pre-domain builds.
  std::size_t io_nodes_per_switch = 0;
  double cpu_mflops = 25.0;            // effective, not peak
  double mem_copy_mb_per_s = 30.0;     // memcpy bandwidth (buffer copies)
  std::uint64_t mem_bytes_per_node = 32ULL << 20;
  TopologyKind topology = TopologyKind::kMesh2D;
  std::uint32_t mesh_cols = 4;         // for kMesh2D
  NetParams net;
  DiskParams disk;
  IoSubsysParams io;

  std::size_t total_nodes() const noexcept {
    return compute_nodes + io_nodes;
  }

  /// Reject impossible shapes with a ConfigError naming the bad field:
  /// zero compute nodes, zero I/O nodes, or a switch fan-in larger than
  /// the I/O partition.  Called by the Machine constructor, so every
  /// simulation fails fast instead of asserting downstream.
  void validate() const;

  // -- Presets (calibrated to the paper's platforms; see DESIGN.md §2) ----

  /// 56-node Paragon used for the FFT experiments (2 or 4 I/O nodes).
  static MachineConfig paragon_small(std::size_t compute_nodes,
                                     std::size_t io_nodes);
  /// 512-node Paragon used for SCF/AST (12, 16 or 64 I/O node partitions).
  static MachineConfig paragon_large(std::size_t compute_nodes,
                                     std::size_t io_nodes);
  /// 80-node SP-2 with PIOFS: 4 I/O nodes, 4 SSA disks each, 32 KB BSU.
  static MachineConfig sp2(std::size_t compute_nodes);
  /// Scale-out platform beyond the paper: 1024-4096 compute nodes and
  /// 64-128 I/O servers on a multistage switch, with switch-scoped I/O
  /// failure domains (8 servers per rack switch).  Throws ConfigError
  /// outside those ranges — the preset is the validated envelope the
  /// figure2_xl sweep runs in (DESIGN.md §16).
  static MachineConfig paragon_xl(std::size_t compute_nodes,
                                  std::size_t io_nodes);
};

class Machine {
 public:
  Machine(simkit::Engine& eng, MachineConfig cfg);

  simkit::Engine& engine() noexcept { return eng_; }
  const MachineConfig& config() const noexcept { return cfg_; }
  Network& network() noexcept { return *net_; }

  NodeId compute_node(std::size_t i) const {
    assert(i < cfg_.compute_nodes);
    return static_cast<NodeId>(i);
  }
  NodeId io_node(std::size_t i) const {
    assert(i < cfg_.io_nodes);
    return static_cast<NodeId>(cfg_.compute_nodes + i);
  }
  bool is_io_node(NodeId n) const noexcept {
    return n >= cfg_.compute_nodes && n < cfg_.total_nodes();
  }

  // -- I/O failure domains (rack switches, see io_nodes_per_switch) -------
  /// Fan-in actually in effect: clamped to [1, io_nodes].
  std::size_t io_domain_fan_in() const noexcept {
    const std::size_t f =
        cfg_.io_nodes_per_switch == 0 ? 1 : cfg_.io_nodes_per_switch;
    return cfg_.io_nodes == 0 ? 1 : std::min(f, cfg_.io_nodes);
  }
  std::size_t io_domain_count() const noexcept {
    const std::size_t f = io_domain_fan_in();
    return (cfg_.io_nodes + f - 1) / f;
  }
  /// Domain of I/O node `i` (index into the I/O partition, not a NodeId).
  std::size_t io_domain_of(std::size_t i) const noexcept {
    return i / io_domain_fan_in();
  }
  /// I/O-partition indices belonging to domain `d`.
  std::vector<std::uint32_t> io_domain_members(std::size_t d) const {
    std::vector<std::uint32_t> m;
    const std::size_t f = io_domain_fan_in();
    for (std::size_t i = d * f; i < std::min((d + 1) * f, cfg_.io_nodes);
         ++i) {
      m.push_back(static_cast<std::uint32_t>(i));
    }
    return m;
  }

  /// Timed computation of `flops` floating-point operations on a node.
  /// (Every node computes at the same configured effective rate.)
  simkit::Task<void> compute(double flops) {
    co_await eng_.delay(flops / (cfg_.cpu_mflops * 1e6));
  }

  /// Timed in-memory copy of `bytes` (used for interface-layer buffering).
  simkit::Task<void> mem_copy(std::uint64_t bytes) {
    co_await eng_.delay(static_cast<double>(bytes) /
                        (cfg_.mem_copy_mb_per_s * 1e6));
  }

  simkit::Duration compute_time(double flops) const noexcept {
    return flops / (cfg_.cpu_mflops * 1e6);
  }

 private:
  simkit::Engine& eng_;
  MachineConfig cfg_;
  std::unique_ptr<Network> net_;
};

}  // namespace hw
