// pario/advisor.hpp — automatic file-layout selection.
//
// The paper (§4.4) notes the FFT layout optimization "can sometimes be
// detected by parallelizing compilers", citing Kandemir-Ramanujam-
// Choudhary (ICPP'97): analyze each loop nest's access pattern of every
// disk-resident array at compile time, then pick the file layout that
// minimizes strided I/O.  LayoutAdvisor is that analysis over observed
// (or declared) tile accesses: feed it the tile shapes a program uses
// against each out-of-core array, and it recommends row- or column-major
// per array and quantifies the I/O calls saved.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "pario/ooc_array.hpp"

namespace pario {

/// I/O requests needed to move one (nr x nc) tile of a (rows x cols)
/// array under the given layout, counting coalescing of adjacent
/// full-length runs — the closed form of OutOfCoreArray::tile_extents.
std::uint64_t tile_run_count(Layout layout, std::uint64_t rows,
                             std::uint64_t cols, std::uint64_t nr,
                             std::uint64_t nc);

class LayoutAdvisor {
 public:
  /// Declare/observe that the program moves `times` tiles of shape
  /// (tile_rows x tile_cols) against `array` (of rows x cols elements).
  void observe(const std::string& array, std::uint64_t rows,
               std::uint64_t cols, std::uint64_t tile_rows,
               std::uint64_t tile_cols, std::uint64_t times = 1);

  /// Total I/O calls all observed accesses of `array` would need.
  std::uint64_t estimated_calls(const std::string& array,
                                Layout layout) const;

  /// The layout minimizing the array's total I/O calls (ties favour
  /// column-major, Fortran's default).
  Layout recommend(const std::string& array) const;

  /// How many times fewer I/O calls the recommended layout needs vs the
  /// alternative (1.0 = layout doesn't matter).
  double improvement(const std::string& array) const;

  /// Human-readable per-array summary.
  std::string report() const;

 private:
  struct AccessPattern {
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::uint64_t calls_col_major = 0;
    std::uint64_t calls_row_major = 0;
  };
  std::map<std::string, AccessPattern> arrays_;
};

}  // namespace pario
