// pario/viewio.hpp — MPI-IO-style file-view I/O.
//
// Glue between FileView (datatype.hpp) and the access strategies: read or
// write a logical window of a view, choosing per call between independent
// positioned I/O, data sieving, or two-phase collective I/O — the three
// options an MPI-IO implementation juggles.
#pragma once

#include <cstdint>
#include <span>

#include "mprt/comm.hpp"
#include "pario/datatype.hpp"
#include "pario/sieve.hpp"
#include "pario/twophase.hpp"
#include "pfs/fs.hpp"
#include "simkit/task.hpp"

namespace pario {

enum class ViewStrategy : std::uint8_t {
  kIndependent,  // one positioned call per physical extent
  kSieved,       // covering-window reads / read-modify-write
  kCollective,   // two-phase across the communicator
};

/// Read logical [view_offset, +length) of `view` into `out` (buffer
/// offsets follow the logical stream).  kCollective requires every rank
/// of `comm` to call collectively with its own view/window.
simkit::Task<void> view_read(mprt::Comm& comm, pfs::StripedFs& fs,
                             pfs::FileId file, const FileView& view,
                             std::uint64_t view_offset, std::uint64_t length,
                             ViewStrategy strategy,
                             std::span<std::byte> out = {});

/// Write the logical window from `data`.
simkit::Task<void> view_write(mprt::Comm& comm, pfs::StripedFs& fs,
                              pfs::FileId file, const FileView& view,
                              std::uint64_t view_offset,
                              std::uint64_t length, ViewStrategy strategy,
                              std::span<const std::byte> data = {});

}  // namespace pario
