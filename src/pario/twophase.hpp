// pario/twophase.hpp — two-phase (collective) I/O, after Thakur et al.'s
// PASSION library [10] and the collective I/O used to optimize BTIO & AST.
//
// Idea: when P processes each need scattered pieces of a shared file,
// don't let each process issue many small, seek-heavy requests.  Instead
// (1) partition the accessed file range into P contiguous, stripe-aligned
// "file domains", one per process; (2) each process performs few large
// sequential I/O calls covering its domain; (3) the processes redistribute
// the data among themselves over the interconnect (alltoallv).  Trading
// interconnect traffic for I/O calls wins because per-call software cost
// and disk seeks dominate small scattered access.
//
// This is a real implementation: with data-backed files and buffers it
// moves actual bytes (tests check byte-exactness against direct access);
// without them the same code paths run timing-only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mprt/comm.hpp"
#include "pario/extent.hpp"
#include "pario/resilient.hpp"
#include "pfs/fs.hpp"
#include "simkit/task.hpp"

namespace pario {

struct TwoPhaseStats {
  simkit::Duration io_time = 0.0;        // phase 1 (file system)
  simkit::Duration exchange_time = 0.0;  // phase 2 (interconnect + copies)
  std::uint64_t io_calls = 0;
  std::uint64_t io_bytes = 0;
};

struct TwoPhaseOptions {
  /// Number of aggregator processes performing the file I/O (ROMIO's
  /// cb_nodes).  0 = every rank aggregates (the default).  Fewer
  /// aggregators concentrate the file traffic — useful when ranks far
  /// outnumber I/O nodes.
  ///
  /// Ignored under a kTwoLevel collective topology: there the topology's
  /// group LEADERS are the aggregators, the rank->aggregator data motion
  /// rides the leader routing, and the replicated O(P) extent table is
  /// replaced by a bounds allreduce plus inline sub-extent records — the
  /// scale-out path (DESIGN.md §16).  Flat and kBruck topologies use the
  /// classic path (whose alltoallv still routes by topology).
  int aggregators = 0;

  /// Retry/backoff policy for the aggregators' file I/O (fault runs).
  /// When an aggregator exhausts the policy, it FINISHES the message
  /// protocol first (so no rank deadlocks inside the collective) and
  /// rethrows the pfs::IoError after its barrier/exchange — callers
  /// coordinate the failure with an agreement collective of their own.
  /// Null (default) = direct FS calls, errors propagate immediately.
  const RetryPolicy* retry = nullptr;
  RetryStats* retry_stats = nullptr;
};

class TwoPhase {
 public:
  /// Collective write: every rank of `comm` calls this with its own piece
  /// list (`mine`, buf_offsets indexing `local_data`).  Blocks until the
  /// rank's share of the collective completes.
  static simkit::Task<void> write(mprt::Comm& comm, pfs::StripedFs& fs,
                                  pfs::FileId file, std::vector<Extent> mine,
                                  std::span<const std::byte> local_data = {},
                                  TwoPhaseStats* stats = nullptr,
                                  TwoPhaseOptions options = {});

  /// Collective read: scattered pieces land in `local_out` at their
  /// buf_offsets.
  static simkit::Task<void> read(mprt::Comm& comm, pfs::StripedFs& fs,
                                 pfs::FileId file, std::vector<Extent> mine,
                                 std::span<std::byte> local_out = {},
                                 TwoPhaseStats* stats = nullptr,
                                 TwoPhaseOptions options = {});

  // -- exposed for tests ---------------------------------------------------

  /// Intersect (sorted) pieces with [lo, hi), preserving order and buffer
  /// mapping.
  static std::vector<Extent> intersect(const std::vector<Extent>& pieces,
                                       std::uint64_t lo, std::uint64_t hi);

  /// Union of file ranges as maximal disjoint runs (overlaps/adjacency
  /// merged); buf_offset of the result is meaningless.
  static std::vector<Extent> merge_runs(std::vector<Extent> pieces);
};

}  // namespace pario
