// pario/health.hpp — client-side server health estimation.
//
// A HealthTracker is the client's memory of how each I/O server has been
// behaving: an EWMA of observed per-operation latency and a time-decayed
// error score, both fed from the completion path of the resilient_* ops.
// Recovery layers consult it to pick the healthier of two checkpoint
// copies, and the resilient read path uses the latency estimate to hedge
// straggling reads against the replica.
//
// The tracker is pure observation: feeding it costs no simulated time,
// and a policy without one behaves exactly as before.  It also keeps the
// client's divergence ledger — the list of byte ranges whose primary copy
// went stale because a write failed over to the replica — so repair can
// happen from the client that knows what it skipped.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pfs/types.hpp"
#include "simkit/time.hpp"

namespace pario {

struct HealthParams {
  double latency_alpha = 0.25;     // EWMA weight of the newest sample
  double error_halflife_s = 30.0;  // error score halves every this long
  double error_cost_s = 0.05;      // badness seconds per unit error score
  /// How long after its reboot a server is considered "recovering":
  /// its cache is cold, a journal replay may be hogging its disks, and
  /// hedged reads should not bet on it.
  double recovery_window_s = 5.0;
  /// Badness surcharge (seconds) while a server is recovering.
  double recovery_cost_s = 0.05;
};

class HealthTracker {
 public:
  using Params = HealthParams;

  explicit HealthTracker(std::size_t servers, Params p = Params());

  std::size_t servers() const noexcept { return lat_.size(); }

  // -- feed (called from resilient_* completions) -------------------------
  void note_success(std::size_t server, simkit::Time now,
                    simkit::Duration latency);
  void note_error(std::size_t server, simkit::Time now);

  // -- recovery signals (fed from fault::Injector listeners) --------------
  /// The server's node crashed: count it as an error burst (requests
  /// there will fail) and clear any stale recovery mark.
  void note_crash(std::size_t server, simkit::Time now);
  /// The server rebooted: it re-enters with a cold cache, so it carries
  /// a recovery surcharge for recovery_window_s.
  void note_recovery(std::size_t server, simkit::Time now);
  /// Inside the post-reboot recovery window?
  bool recovering(std::size_t server, simkit::Time now) const noexcept;
  /// Any server of a striped copy still recovering?  Hedged reads use
  /// this to avoid betting a speculative leg on a cold server.
  bool any_recovering(std::span<const std::uint32_t> servers,
                      simkit::Time now) const noexcept;
  std::uint64_t recoveries_seen() const noexcept { return recoveries_; }

  // -- estimates ----------------------------------------------------------
  /// EWMA of observed latency; 0 until the first sample lands.
  double ewma_latency(std::size_t server) const noexcept;
  /// Exponentially decayed count of recent errors at `now`.
  double error_score(std::size_t server, simkit::Time now) const noexcept;
  /// Composite cost estimate in seconds (higher = worse): EWMA latency
  /// plus an error surcharge.
  double badness(std::size_t server, simkit::Time now) const noexcept;
  /// Slowest-leg latency estimate for a striped operation over `servers`;
  /// 0 when nothing has been observed yet (callers must not hedge then).
  double expected_latency(std::span<const std::uint32_t> servers)
      const noexcept;
  /// 0 if copy A (striped over `a`) looks at least as healthy as copy B,
  /// else 1.  A copy is as bad as its worst server.
  std::size_t pick_healthier(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b,
                             simkit::Time now) const noexcept;

  // -- hedged-read accounting ---------------------------------------------
  void note_hedge_issued();
  void note_hedge_win();   // the replica copy finished first
  void note_hedge_loss();  // the straggling primary still won
  std::uint64_t hedges_issued() const noexcept { return hedges_issued_; }
  std::uint64_t hedge_wins() const noexcept { return hedge_wins_; }
  std::uint64_t hedge_losses() const noexcept { return hedge_losses_; }

  // -- divergence ledger --------------------------------------------------
  /// A byte range whose primary copy is stale: the write landed only on
  /// the replica while the primary's node was down.
  struct Divergence {
    pfs::FileId primary = pfs::kInvalidFile;
    pfs::FileId replica = pfs::kInvalidFile;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };
  void note_divergence(Divergence d);
  /// Drain the ledger (repair takes ownership of what it will fix).
  std::vector<Divergence> take_divergences();
  std::size_t pending_divergences() const noexcept {
    return divergences_.size();
  }
  void note_repaired(std::uint64_t n = 1);
  std::uint64_t divergences_repaired() const noexcept { return repaired_; }

 private:
  struct ErrorState {
    double score = 0.0;
    simkit::Time last = 0.0;
  };
  double decayed(const ErrorState& e, simkit::Time now) const noexcept;

  Params p_;
  std::vector<double> lat_;        // EWMA latency, 0 = no samples yet
  std::vector<ErrorState> err_;
  std::vector<simkit::Time> recovered_at_;  // last reboot; -inf = never
  std::uint64_t recoveries_ = 0;
  std::vector<Divergence> divergences_;
  std::uint64_t hedges_issued_ = 0;
  std::uint64_t hedge_wins_ = 0;
  std::uint64_t hedge_losses_ = 0;
  std::uint64_t repaired_ = 0;
};

}  // namespace pario
