// pario/prefetch.hpp — sequential chunk prefetching (PASSION iread).
//
// SCF's read phase scans a private file front to back in packed chunks —
// exactly the pattern prefetching hides: while the application consumes
// chunk k, chunk k+1 is already in flight.  Per the paper's methodology,
// the I/O time of a prefetched read is accounted as wait time (how long
// the consumer actually blocked) plus copy time (staging buffer to user),
// both tracked here and reported to the tracer as the Read cost.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "pario/interface.hpp"
#include "pfs/types.hpp"
#include "simkit/engine.hpp"
#include "simkit/task.hpp"

namespace pario {

class Prefetcher {
 public:
  /// Scan [start, start + total_bytes) of `io`'s file in `chunk`-byte
  /// pieces (the final piece may be shorter) with one-chunk-ahead
  /// prefetch.  `backed` allocates real staging buffers (chunk bytes x2)
  /// and makes next() return real data.
  Prefetcher(IoInterface& io, std::uint64_t start, std::uint64_t chunk,
             std::uint64_t total_bytes, bool backed = false);

  /// Wait for the current chunk (issuing the next one), pay the staging
  /// copy, and return a view of the data (empty when not backed).
  /// Returns an empty span once the scan is exhausted and `done()` is
  /// true.
  simkit::Task<std::span<const std::byte>> next();

  bool done() const noexcept { return delivered_ == count_; }
  std::uint64_t chunks_delivered() const noexcept { return delivered_; }
  std::uint64_t chunk_count() const noexcept { return count_; }
  /// Byte length of the most recently delivered chunk.
  std::uint64_t last_len() const noexcept { return last_len_; }

  /// Time the consumer actually blocked waiting for I/O.
  simkit::Duration wait_time() const noexcept { return wait_; }
  /// Time spent copying staged chunks to the consumer.
  simkit::Duration copy_time() const noexcept { return copy_; }

 private:
  void issue(std::uint64_t index);

  std::uint64_t len_of(std::uint64_t index) const noexcept {
    return std::min(chunk_, total_ - index * chunk_);
  }

  IoInterface& io_;
  std::uint64_t start_;
  std::uint64_t chunk_;
  std::uint64_t total_;
  std::uint64_t count_;
  std::uint64_t last_len_ = 0;
  bool backed_;
  std::uint64_t issued_ = 0;
  std::uint64_t delivered_ = 0;
  std::vector<std::byte> buf_[2];
  simkit::ProcHandle inflight_[2];
  simkit::Duration wait_ = 0.0;
  simkit::Duration copy_ = 0.0;

  // Registry instruments (pario.prefetch.*); null when metrics are off.
  // A "hit" is a chunk that already finished when the consumer asked for
  // it — the prefetch fully hid the I/O.
  metrics::Counter* m_hits_ = nullptr;
  metrics::Counter* m_misses_ = nullptr;
  metrics::Histogram* m_wait_s_ = nullptr;
  metrics::Histogram* m_copy_s_ = nullptr;
};

}  // namespace pario
