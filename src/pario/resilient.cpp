#include "pario/resilient.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

#include "metrics/metrics.hpp"
#include "simkit/trigger.hpp"

namespace pario {

void RetryPolicy::validate() const {
  if (max_attempts < 1) {
    throw std::invalid_argument("RetryPolicy: max_attempts must be >= 1");
  }
  if (backoff_ms < 0.0) {
    throw std::invalid_argument("RetryPolicy: backoff_ms must be >= 0");
  }
  if (backoff_multiplier < 1.0) {
    throw std::invalid_argument(
        "RetryPolicy: backoff_multiplier must be >= 1");
  }
  if (hedge_latency_multiple < 0.0) {
    throw std::invalid_argument(
        "RetryPolicy: hedge_latency_multiple must be >= 0");
  }
}

void RetryStats::note_attempt() {
  ++attempts;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.retry.attempts").inc();
  }
}

void RetryStats::note_retry(simkit::Duration backoff) {
  ++retries;
  backoff_time += backoff;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.retry.retries").inc();
    r->histogram("pario.retry.backoff_s").observe(backoff);
  }
}

void RetryStats::note_failover(bool write) {
  ++failovers;
  if (write) ++diverged_writes;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.retry.failovers").inc();
    if (write) r->counter("pario.retry.diverged_writes").inc();
  }
}

void RetryStats::note_exhausted() {
  ++exhausted;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.retry.exhausted").inc();
  }
}

namespace {

/// Distinct I/O servers a byte range of `file` touches.
std::vector<std::uint32_t> range_servers(pfs::StripedFs& fs,
                                         pfs::FileId file,
                                         std::uint64_t offset,
                                         std::uint64_t len) {
  std::vector<std::uint32_t> out;
  for (const pfs::StripePiece& p : fs.stripe_map(file).split(offset, len)) {
    if (std::find(out.begin(), out.end(), p.server) == out.end()) {
      out.push_back(p.server);
    }
  }
  return out;
}

void feed_success(HealthTracker* health, pfs::StripedFs& fs,
                  pfs::FileId file, std::uint64_t offset, std::uint64_t len,
                  simkit::Time now, simkit::Duration latency) {
  if (!health) return;
  for (const std::uint32_t s : range_servers(fs, file, offset, len)) {
    health->note_success(s, now, latency);
  }
}

/// Shared scoreboard of one hedged read.  Heap-allocated and owned by
/// every spawned leg via shared_ptr: the loser leg (and the deadline
/// timer) may outlive the winning co_await, so nothing here can live on
/// the awaiting coroutine's frame.
struct HedgeState {
  simkit::Trigger primary_done;
  simkit::Trigger hedge_done;
  simkit::Trigger wake1;  // primary completion or deadline
  simkit::Trigger wake2;  // any leg's completion
  bool primary_ok = false;
  bool hedge_ok = false;
  std::exception_ptr primary_err;
  std::exception_ptr hedge_err;
};

/// One leg of a hedged read.  Detached: catches everything (an unjoined
/// throwing process would abort the engine) and reports via the state.
simkit::Task<void> hedge_leg(pfs::StripedFs* fs, hw::NodeId client,
                             pfs::FileId file, std::uint64_t offset,
                             std::uint64_t len, std::span<std::byte> out,
                             HealthTracker* health,
                             std::shared_ptr<HedgeState> st, bool is_hedge) {
  simkit::Engine& eng = fs->machine().engine();
  const simkit::Time t0 = eng.now();
  try {
    co_await fs->pread(client, file, offset, len, out);
    (is_hedge ? st->hedge_ok : st->primary_ok) = true;
    feed_success(health, *fs, file, offset, len, eng.now(), eng.now() - t0);
  } catch (const pfs::IoError& e) {
    (is_hedge ? st->hedge_err : st->primary_err) = std::current_exception();
    if (health) health->note_error(e.io_node(), eng.now());
  } catch (...) {
    (is_hedge ? st->hedge_err : st->primary_err) = std::current_exception();
  }
  (is_hedge ? st->hedge_done : st->primary_done).fire(eng);
}

simkit::Task<void> watch_primary(simkit::Engine* eng,
                                 std::shared_ptr<HedgeState> st) {
  co_await st->primary_done.wait();
  st->wake1.fire(*eng);
  st->wake2.fire(*eng);
}

simkit::Task<void> watch_hedge(simkit::Engine* eng,
                               std::shared_ptr<HedgeState> st) {
  co_await st->hedge_done.wait();
  st->wake2.fire(*eng);
}

simkit::Task<void> hedge_deadline(simkit::Engine* eng, simkit::Duration d,
                                  std::shared_ptr<HedgeState> st) {
  co_await eng->delay(d);
  st->wake1.fire(*eng);
}

/// Straggler-hedged read: issue the primary, and if it is still
/// outstanding past `deadline`, race the replica copy against it.  The
/// first successful completion wins; if one leg fails the other is
/// awaited before giving up.  Rethrows the primary's error when both
/// legs fail, so the caller's retry ladder classifies it as usual.
simkit::Task<void> hedged_read(pfs::StripedFs& fs, hw::NodeId client,
                               pfs::FileId file, pfs::FileId replica,
                               std::uint64_t offset, std::uint64_t len,
                               std::span<std::byte> out,
                               HealthTracker* health,
                               simkit::Duration deadline) {
  simkit::Engine& eng = fs.machine().engine();
  auto st = std::make_shared<HedgeState>();
  eng.spawn(hedge_leg(&fs, client, file, offset, len, out, health, st,
                      /*is_hedge=*/false),
            "hedge_primary");
  eng.spawn(watch_primary(&eng, st), "hedge_watch");
  eng.spawn(hedge_deadline(&eng, deadline, st), "hedge_timer");
  co_await st->wake1.wait();
  if (!st->primary_done.fired()) {
    health->note_hedge_issued();
    eng.spawn(hedge_leg(&fs, client, replica, offset, len, out, health, st,
                        /*is_hedge=*/true),
              "hedge_replica");
    eng.spawn(watch_hedge(&eng, st), "hedge_watch");
    co_await st->wake2.wait();
    if (st->hedge_done.fired() && !st->primary_done.fired()) {
      // Replica finished first.  On success that's the hedge paying off;
      // on failure fall back to the still-running primary.
      if (st->hedge_ok) {
        health->note_hedge_win();
        co_return;
      }
      co_await st->primary_done.wait();
    } else {
      if (st->primary_ok) {
        health->note_hedge_loss();
        co_return;
      }
      co_await st->hedge_done.wait();
      if (st->hedge_ok) health->note_hedge_win();
    }
  }
  if (st->primary_ok || st->hedge_ok) co_return;
  std::rethrow_exception(st->primary_err ? st->primary_err : st->hedge_err);
}

simkit::Task<void> resilient_op(pfs::OpKind kind, pfs::StripedFs& fs,
                                hw::NodeId client, pfs::FileId file,
                                std::uint64_t offset, std::uint64_t len,
                                std::span<std::byte> out,
                                std::span<const std::byte> in,
                                RetryPolicy policy, RetryStats* stats) {
  simkit::Engine& eng = fs.machine().engine();
  pfs::FileId target = file;
  double delay_ms = policy.backoff_ms;
  // Callers without their own stats still feed the metrics registry: the
  // note_* entry points are the single accounting site either way.
  RetryStats local;
  if (!stats) stats = &local;
  for (int attempt = 1;; ++attempt) {
    // co_await is illegal inside a catch handler, so the handler only
    // classifies the failure and the backoff sleep happens after it.
    bool backoff = false;
    // Hedge only reads of the primary with a live latency estimate: an
    // estimate of 0 means the tracker hasn't seen a completion yet.
    bool hedged = false;
    double est = 0.0;
    if (kind == pfs::OpKind::kRead && policy.health &&
        policy.hedge_latency_multiple > 0.0 &&
        policy.replica != pfs::kInvalidFile && target == file && len > 0) {
      est = policy.health->expected_latency(
          range_servers(fs, target, offset, len));
      // A hedge is a bet that the replica is fast; a freshly rebooted
      // replica server has a cold cache (and maybe a journal replay in
      // flight), so the bet is off while any of its servers recovers.
      hedged = est > 0.0 &&
               !policy.health->any_recovering(
                   range_servers(fs, policy.replica, offset, len), eng.now());
    }
    try {
      stats->note_attempt();
      const simkit::Time t0 = eng.now();
      if (hedged) {
        co_await hedged_read(fs, client, file, policy.replica, offset, len,
                             out, policy.health,
                             est * policy.hedge_latency_multiple);
      } else if (kind == pfs::OpKind::kRead) {
        co_await fs.pread(client, target, offset, len, out);
        feed_success(policy.health, fs, target, offset, len, eng.now(),
                     eng.now() - t0);
      } else {
        co_await fs.pwrite(client, target, offset, len, in);
        feed_success(policy.health, fs, target, offset, len, eng.now(),
                     eng.now() - t0);
      }
      co_return;
    } catch (const pfs::IoError& e) {
      // Hedged legs feed the tracker themselves; feeding here again
      // would double-count the same failure.
      if (!hedged && policy.health) {
        policy.health->note_error(e.io_node(), eng.now());
      }
      // Node-down on the primary: switch to the replica stripe once (it
      // lives on different servers, so it can survive the same crash).
      if (e.kind() == pfs::IoErrorKind::kNodeDown &&
          policy.replica != pfs::kInvalidFile && target == file) {
        target = policy.replica;
        // A redirected write never reaches the primary: the pair is now
        // divergent (see RetryStats::diverged_writes); the tracker's
        // ledger remembers the range so repair_divergences can heal it.
        stats->note_failover(kind == pfs::OpKind::kWrite);
        if (kind == pfs::OpKind::kWrite && policy.health) {
          policy.health->note_divergence(
              {file, policy.replica, offset, len});
        }
        // The fail-over try is free of backoff.
      } else if (attempt >= policy.max_attempts) {
        stats->note_exhausted();
        throw;
      } else {
        stats->note_retry(simkit::milliseconds(delay_ms));
        backoff = true;
      }
    }
    if (backoff) {
      co_await eng.delay(simkit::milliseconds(delay_ms));
      delay_ms *= policy.backoff_multiplier;
    }
  }
}

simkit::Task<void> pwritev_impl(pfs::StripedFs& fs, hw::NodeId client,
                                pfs::FileId file,
                                std::vector<WritePiece> pieces,
                                std::span<const std::byte> data,
                                RetryPolicy policy, RetryStats* stats) {
  for (const WritePiece& p : pieces) {
    std::span<const std::byte> slice;
    if (!data.empty()) {
      slice = data.subspan(static_cast<std::size_t>(p.buf_offset),
                           static_cast<std::size_t>(p.length));
    }
    co_await resilient_op(pfs::OpKind::kWrite, fs, client, file,
                          p.file_offset, p.length, {}, slice, policy, stats);
  }
}

simkit::Task<void> fsync_impl(pfs::StripedFs& fs, hw::NodeId client,
                              pfs::FileId file, RetryPolicy policy,
                              RetryStats* stats) {
  simkit::Engine& eng = fs.machine().engine();
  double delay_ms = policy.backoff_ms;
  RetryStats local;
  if (!stats) stats = &local;
  for (int attempt = 1;; ++attempt) {
    bool backoff = false;
    try {
      stats->note_attempt();
      co_await fs.fsync(client, file);
      co_return;
    } catch (const pfs::IoError& e) {
      if (policy.health) policy.health->note_error(e.io_node(), eng.now());
      if (attempt >= policy.max_attempts) {
        stats->note_exhausted();
        throw;
      }
      stats->note_retry(simkit::milliseconds(delay_ms));
      backoff = true;
    }
    if (backoff) {
      co_await eng.delay(simkit::milliseconds(delay_ms));
      delay_ms *= policy.backoff_multiplier;
    }
  }
}

simkit::Task<void> repair_impl(pfs::StripedFs& fs, hw::NodeId client,
                               HealthTracker* health, RetryPolicy policy,
                               RetryStats* stats) {
  const std::vector<HealthTracker::Divergence> ledger =
      health->take_divergences();
  for (const HealthTracker::Divergence& d : ledger) {
    // The replica is authoritative for a diverged range; content-backed
    // pairs move real bytes, timing-only pairs just pay the I/O time.
    std::vector<std::byte> buf;
    std::span<std::byte> rd;
    std::span<const std::byte> wr;
    if (fs.is_backed(d.replica)) {
      buf.resize(static_cast<std::size_t>(d.length));
      rd = buf;
      wr = buf;
    }
    co_await resilient_op(pfs::OpKind::kRead, fs, client, d.replica,
                          d.offset, d.length, rd, {}, policy, stats);
    co_await resilient_op(pfs::OpKind::kWrite, fs, client, d.primary,
                          d.offset, d.length, {}, wr, policy, stats);
    health->note_repaired();
  }
}

}  // namespace

// The public entry points are deliberately NOT coroutines: they validate
// the policy (throwing std::invalid_argument synchronously, before any
// simulated time can pass) and return the inner coroutine's task.

simkit::Task<void> resilient_pread(pfs::StripedFs& fs, hw::NodeId client,
                                   pfs::FileId file, std::uint64_t offset,
                                   std::uint64_t len,
                                   std::span<std::byte> out,
                                   RetryPolicy policy, RetryStats* stats) {
  policy.validate();
  return resilient_op(pfs::OpKind::kRead, fs, client, file, offset, len,
                      out, {}, policy, stats);
}

simkit::Task<void> resilient_pwrite(pfs::StripedFs& fs, hw::NodeId client,
                                    pfs::FileId file, std::uint64_t offset,
                                    std::uint64_t len,
                                    std::span<const std::byte> data,
                                    RetryPolicy policy, RetryStats* stats) {
  policy.validate();
  return resilient_op(pfs::OpKind::kWrite, fs, client, file, offset, len,
                      {}, data, policy, stats);
}

simkit::Task<void> resilient_pwritev(pfs::StripedFs& fs, hw::NodeId client,
                                     pfs::FileId file,
                                     std::vector<WritePiece> pieces,
                                     std::span<const std::byte> data,
                                     RetryPolicy policy, RetryStats* stats) {
  policy.validate();
  return pwritev_impl(fs, client, file, std::move(pieces), data, policy,
                      stats);
}

simkit::Task<void> resilient_fsync(pfs::StripedFs& fs, hw::NodeId client,
                                   pfs::FileId file, RetryPolicy policy,
                                   RetryStats* stats) {
  policy.validate();
  return fsync_impl(fs, client, file, policy, stats);
}

simkit::Task<void> repair_divergences(pfs::StripedFs& fs, hw::NodeId client,
                                      HealthTracker& health,
                                      RetryPolicy policy,
                                      RetryStats* stats) {
  policy.validate();
  // Repair must not fail over or hedge: redirecting the primary rewrite
  // back to the replica would "heal" nothing.
  policy.replica = pfs::kInvalidFile;
  policy.hedge_latency_multiple = 0.0;
  return repair_impl(fs, client, &health, policy, stats);
}

}  // namespace pario
