#include "pario/resilient.hpp"

#include "metrics/metrics.hpp"

namespace pario {

void RetryStats::note_attempt() {
  ++attempts;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.retry.attempts").inc();
  }
}

void RetryStats::note_retry(simkit::Duration backoff) {
  ++retries;
  backoff_time += backoff;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.retry.retries").inc();
    r->histogram("pario.retry.backoff_s").observe(backoff);
  }
}

void RetryStats::note_failover(bool write) {
  ++failovers;
  if (write) ++diverged_writes;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.retry.failovers").inc();
    if (write) r->counter("pario.retry.diverged_writes").inc();
  }
}

void RetryStats::note_exhausted() {
  ++exhausted;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.retry.exhausted").inc();
  }
}

namespace {

simkit::Task<void> resilient_op(pfs::OpKind kind, pfs::StripedFs& fs,
                                hw::NodeId client, pfs::FileId file,
                                std::uint64_t offset, std::uint64_t len,
                                std::span<std::byte> out,
                                std::span<const std::byte> in,
                                RetryPolicy policy, RetryStats* stats) {
  simkit::Engine& eng = fs.machine().engine();
  pfs::FileId target = file;
  double delay_ms = policy.backoff_ms;
  // Callers without their own stats still feed the metrics registry: the
  // note_* entry points are the single accounting site either way.
  RetryStats local;
  if (!stats) stats = &local;
  for (int attempt = 1;; ++attempt) {
    // co_await is illegal inside a catch handler, so the handler only
    // classifies the failure and the backoff sleep happens after it.
    bool backoff = false;
    try {
      stats->note_attempt();
      if (kind == pfs::OpKind::kRead) {
        co_await fs.pread(client, target, offset, len, out);
      } else {
        co_await fs.pwrite(client, target, offset, len, in);
      }
      co_return;
    } catch (const pfs::IoError& e) {
      // Node-down on the primary: switch to the replica stripe once (it
      // lives on different servers, so it can survive the same crash).
      if (e.kind() == pfs::IoErrorKind::kNodeDown &&
          policy.replica != pfs::kInvalidFile && target == file) {
        target = policy.replica;
        // A redirected write never reaches the primary: the pair is now
        // divergent (see RetryStats::diverged_writes).
        stats->note_failover(kind == pfs::OpKind::kWrite);
        // The fail-over try is free of backoff.
      } else if (attempt >= policy.max_attempts) {
        stats->note_exhausted();
        throw;
      } else {
        stats->note_retry(simkit::milliseconds(delay_ms));
        backoff = true;
      }
    }
    if (backoff) {
      co_await eng.delay(simkit::milliseconds(delay_ms));
      delay_ms *= policy.backoff_multiplier;
    }
  }
}

}  // namespace

simkit::Task<void> resilient_pread(pfs::StripedFs& fs, hw::NodeId client,
                                   pfs::FileId file, std::uint64_t offset,
                                   std::uint64_t len,
                                   std::span<std::byte> out,
                                   RetryPolicy policy, RetryStats* stats) {
  co_await resilient_op(pfs::OpKind::kRead, fs, client, file, offset, len,
                        out, {}, policy, stats);
}

simkit::Task<void> resilient_pwrite(pfs::StripedFs& fs, hw::NodeId client,
                                    pfs::FileId file, std::uint64_t offset,
                                    std::uint64_t len,
                                    std::span<const std::byte> data,
                                    RetryPolicy policy, RetryStats* stats) {
  co_await resilient_op(pfs::OpKind::kWrite, fs, client, file, offset, len,
                        {}, data, policy, stats);
}

simkit::Task<void> resilient_pwritev(pfs::StripedFs& fs, hw::NodeId client,
                                     pfs::FileId file,
                                     std::vector<WritePiece> pieces,
                                     std::span<const std::byte> data,
                                     RetryPolicy policy, RetryStats* stats) {
  for (const WritePiece& p : pieces) {
    std::span<const std::byte> slice;
    if (!data.empty()) {
      slice = data.subspan(static_cast<std::size_t>(p.buf_offset),
                           static_cast<std::size_t>(p.length));
    }
    co_await resilient_pwrite(fs, client, file, p.file_offset, p.length,
                              slice, policy, stats);
  }
}

}  // namespace pario
