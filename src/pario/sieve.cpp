#include "pario/sieve.hpp"

#include <algorithm>
#include <cstring>

namespace pario {
namespace {

struct Window {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::vector<Extent> pieces;
};

/// Greedy left-to-right windowing: extend while the covering span stays
/// within max_window; a piece larger than the window gets its own.
std::vector<Window> make_windows(std::vector<Extent> pieces,
                                 std::uint64_t max_window) {
  std::sort(pieces.begin(), pieces.end(),
            [](const Extent& a, const Extent& b) {
              return a.file_offset < b.file_offset;
            });
  std::vector<Window> windows;
  for (const auto& e : pieces) {
    if (!windows.empty() &&
        e.file_end() - windows.back().lo <= max_window) {
      windows.back().hi = std::max(windows.back().hi, e.file_end());
      windows.back().pieces.push_back(e);
    } else {
      windows.push_back(Window{e.file_offset, e.file_end(), {e}});
    }
  }
  return windows;
}

}  // namespace

simkit::Task<void> sieved_read(pfs::StripedFs& fs, hw::NodeId client,
                               pfs::FileId file, std::vector<Extent> pieces,
                               std::span<std::byte> out,
                               std::uint64_t max_window, SieveStats* stats) {
  const bool with_data = !out.empty() && fs.is_backed(file);
  std::vector<std::byte> window_buf;
  for (const Window& w : make_windows(std::move(pieces), max_window)) {
    const std::uint64_t span_len = w.hi - w.lo;
    if (with_data) window_buf.resize(span_len);
    std::span<std::byte> window_view;  // no ternary in co_await (GCC 12)
    if (with_data) window_view = window_buf;
    co_await fs.pread(client, file, w.lo, span_len, window_view);
    std::uint64_t useful = 0;
    for (const auto& e : w.pieces) {
      if (with_data) {
        std::memcpy(out.data() + e.buf_offset,
                    window_buf.data() + (e.file_offset - w.lo), e.length);
      }
      useful += e.length;
    }
    co_await fs.machine().mem_copy(useful);  // extraction pass
    if (stats) {
      ++stats->io_calls;
      stats->moved_bytes += span_len;
      stats->useful_bytes += useful;
    }
  }
}

simkit::Task<void> sieved_write(pfs::StripedFs& fs, hw::NodeId client,
                                pfs::FileId file, std::vector<Extent> pieces,
                                std::span<const std::byte> data,
                                std::uint64_t max_window, SieveStats* stats) {
  const bool with_data = !data.empty() && fs.is_backed(file);
  std::vector<std::byte> window_buf;
  for (const Window& w : make_windows(std::move(pieces), max_window)) {
    const std::uint64_t span_len = w.hi - w.lo;
    // Read-modify-write: fetch the window unless the pieces tile it fully.
    std::uint64_t useful = 0;
    for (const auto& e : w.pieces) useful += e.length;
    const bool full_cover = useful == span_len;
    if (with_data) window_buf.assign(span_len, std::byte{0});
    std::span<std::byte> window_view;
    if (with_data) window_view = window_buf;
    if (!full_cover) {
      co_await fs.pread(client, file, w.lo, span_len, window_view);
      if (stats) {
        ++stats->io_calls;
        stats->moved_bytes += span_len;
      }
    }
    for (const auto& e : w.pieces) {
      if (with_data) {
        std::memcpy(window_buf.data() + (e.file_offset - w.lo),
                    data.data() + e.buf_offset, e.length);
      }
    }
    co_await fs.machine().mem_copy(useful);  // merge pass
    co_await fs.pwrite(client, file, w.lo, span_len,
                       std::span<const std::byte>(window_view));
    if (stats) {
      ++stats->io_calls;
      stats->moved_bytes += span_len;
      stats->useful_bytes += useful;
    }
  }
}

simkit::Task<void> direct_read(pfs::StripedFs& fs, hw::NodeId client,
                               pfs::FileId file,
                               const std::vector<Extent>& pieces,
                               std::span<std::byte> out, SieveStats* stats) {
  const bool with_data = !out.empty() && fs.is_backed(file);
  for (const auto& e : pieces) {
    std::span<std::byte> piece_view;
    if (with_data) piece_view = out.subspan(e.buf_offset, e.length);
    co_await fs.pread(client, file, e.file_offset, e.length, piece_view);
    if (stats) {
      ++stats->io_calls;
      stats->moved_bytes += e.length;
      stats->useful_bytes += e.length;
    }
  }
}

}  // namespace pario
