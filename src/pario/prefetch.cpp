#include "pario/prefetch.hpp"

#include <cassert>

namespace pario {

Prefetcher::Prefetcher(IoInterface& io, std::uint64_t start,
                       std::uint64_t chunk, std::uint64_t total_bytes,
                       bool backed)
    : io_(io),
      start_(start),
      chunk_(chunk),
      total_(total_bytes),
      count_(chunk == 0 ? 0 : (total_bytes + chunk - 1) / chunk),
      backed_(backed) {
  if (backed_) {
    buf_[0].resize(chunk_);
    buf_[1].resize(chunk_);
  }
  if (metrics::Registry* r = metrics::current()) {
    m_hits_ = &r->counter("pario.prefetch.hits");
    m_misses_ = &r->counter("pario.prefetch.misses");
    m_wait_s_ = &r->histogram("pario.prefetch.wait_s");
    m_copy_s_ = &r->histogram("pario.prefetch.copy_s");
  }
  // Prime the pipeline with the first chunk.
  if (count_ > 0) issue(0);
}

void Prefetcher::issue(std::uint64_t index) {
  assert(index == issued_);
  const std::uint64_t slot = index % 2;
  const std::uint64_t len = len_of(index);
  inflight_[slot] = io_.iread(
      start_ + index * chunk_, len,
      backed_ ? std::span<std::byte>(buf_[slot]).subspan(0, len)
              : std::span<std::byte>{});
  ++issued_;
}

simkit::Task<std::span<const std::byte>> Prefetcher::next() {
  if (done()) co_return std::span<const std::byte>{};
  simkit::Engine& eng = io_.engine();
  const std::uint64_t slot = delivered_ % 2;
  const std::uint64_t len = len_of(delivered_);

  const simkit::Time t0 = eng.now();
  if (m_hits_) {
    (inflight_[slot].done() ? m_hits_ : m_misses_)->inc();
  }
  co_await inflight_[slot].join();
  wait_ += eng.now() - t0;
  if (m_wait_s_) m_wait_s_->observe(eng.now() - t0);

  // Overlap depth one: as soon as chunk k is here, launch k+1.
  if (issued_ < count_) issue(issued_);

  // Stage-to-user copy.
  const simkit::Time t1 = eng.now();
  co_await io_.machine().mem_copy(len);
  copy_ += eng.now() - t1;
  if (m_copy_s_) m_copy_s_->observe(eng.now() - t1);

  ++delivered_;
  last_len_ = len;
  co_return backed_
      ? std::span<const std::byte>(buf_[slot]).subspan(0, len)
      : std::span<const std::byte>{};
}

}  // namespace pario
