// pario/sieve.hpp — data sieving (single-process access optimization).
//
// Instead of one I/O call per scattered piece, read a large contiguous
// window covering many pieces and extract them in memory (writes do
// read-modify-write on the window).  Useful bytes vs moved bytes is the
// classic sieving trade-off; stats expose it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/machine.hpp"
#include "pario/extent.hpp"
#include "pfs/fs.hpp"
#include "simkit/task.hpp"

namespace pario {

struct SieveStats {
  std::uint64_t io_calls = 0;
  std::uint64_t moved_bytes = 0;   // bytes through the file system
  std::uint64_t useful_bytes = 0;  // bytes the caller asked for
};

/// Read scattered pieces via sieving windows of at most `max_window`
/// bytes.  With data: `out` is the flattened local buffer indexed by
/// buf_offset.
simkit::Task<void> sieved_read(pfs::StripedFs& fs, hw::NodeId client,
                               pfs::FileId file, std::vector<Extent> pieces,
                               std::span<std::byte> out = {},
                               std::uint64_t max_window = 4 << 20,
                               SieveStats* stats = nullptr);

/// Write scattered pieces via read-modify-write sieving windows.
simkit::Task<void> sieved_write(pfs::StripedFs& fs, hw::NodeId client,
                                pfs::FileId file, std::vector<Extent> pieces,
                                std::span<const std::byte> data = {},
                                std::uint64_t max_window = 4 << 20,
                                SieveStats* stats = nullptr);

/// Baseline for comparison: one positioned call per piece.
simkit::Task<void> direct_read(pfs::StripedFs& fs, hw::NodeId client,
                               pfs::FileId file,
                               const std::vector<Extent>& pieces,
                               std::span<std::byte> out = {},
                               SieveStats* stats = nullptr);

}  // namespace pario
