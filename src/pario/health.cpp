#include "pario/health.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/metrics.hpp"

namespace pario {

namespace {
constexpr simkit::Time kNever = -1e300;
}  // namespace

HealthTracker::HealthTracker(std::size_t servers, Params p)
    : p_(p), lat_(servers, 0.0), err_(servers),
      recovered_at_(servers, kNever) {}

void HealthTracker::note_success(std::size_t server, simkit::Time now,
                                 simkit::Duration latency) {
  if (server >= lat_.size()) return;
  double& l = lat_[server];
  l = l == 0.0 ? latency : (1.0 - p_.latency_alpha) * l +
                               p_.latency_alpha * latency;
  // Touch the error state so its decay clock doesn't jump later.
  err_[server].score = decayed(err_[server], now);
  err_[server].last = now;
}

void HealthTracker::note_error(std::size_t server, simkit::Time now) {
  if (server >= err_.size()) return;
  err_[server].score = decayed(err_[server], now) + 1.0;
  err_[server].last = now;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.health.errors").inc();
  }
}

void HealthTracker::note_crash(std::size_t server, simkit::Time now) {
  if (server >= err_.size()) return;
  // A crash is worth a burst of errors up front: the tracker should not
  // need to observe every doomed request to learn the node is gone.
  err_[server].score = decayed(err_[server], now) + 3.0;
  err_[server].last = now;
  recovered_at_[server] = kNever;  // down, not recovering
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.health.crash_signals").inc();
  }
}

void HealthTracker::note_recovery(std::size_t server, simkit::Time now) {
  if (server >= recovered_at_.size()) return;
  recovered_at_[server] = now;
  ++recoveries_;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.health.recovery_signals").inc();
  }
}

bool HealthTracker::recovering(std::size_t server,
                               simkit::Time now) const noexcept {
  if (server >= recovered_at_.size()) return false;
  const simkit::Time at = recovered_at_[server];
  return at != kNever && now - at < p_.recovery_window_s;
}

bool HealthTracker::any_recovering(std::span<const std::uint32_t> servers,
                                   simkit::Time now) const noexcept {
  for (const std::uint32_t s : servers) {
    if (recovering(s, now)) return true;
  }
  return false;
}

double HealthTracker::decayed(const ErrorState& e,
                              simkit::Time now) const noexcept {
  if (e.score == 0.0) return 0.0;
  const double dt = std::max(0.0, now - e.last);
  return e.score * std::exp2(-dt / p_.error_halflife_s);
}

double HealthTracker::ewma_latency(std::size_t server) const noexcept {
  return server < lat_.size() ? lat_[server] : 0.0;
}

double HealthTracker::error_score(std::size_t server,
                                  simkit::Time now) const noexcept {
  return server < err_.size() ? decayed(err_[server], now) : 0.0;
}

double HealthTracker::badness(std::size_t server,
                              simkit::Time now) const noexcept {
  // A recovering server is priced worse than its history says: the
  // cache it earned that history with died in the crash.
  const double surcharge =
      recovering(server, now) ? p_.recovery_cost_s : 0.0;
  return ewma_latency(server) + p_.error_cost_s * error_score(server, now) +
         surcharge;
}

double HealthTracker::expected_latency(
    std::span<const std::uint32_t> servers) const noexcept {
  double worst = 0.0;
  for (const std::uint32_t s : servers) {
    worst = std::max(worst, ewma_latency(s));
  }
  return worst;
}

std::size_t HealthTracker::pick_healthier(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
    simkit::Time now) const noexcept {
  double worst_a = 0.0;
  double worst_b = 0.0;
  for (const std::uint32_t s : a) worst_a = std::max(worst_a, badness(s, now));
  for (const std::uint32_t s : b) worst_b = std::max(worst_b, badness(s, now));
  return worst_a <= worst_b ? 0 : 1;
}

void HealthTracker::note_hedge_issued() {
  ++hedges_issued_;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.health.hedges").inc();
  }
}

void HealthTracker::note_hedge_win() {
  ++hedge_wins_;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.health.hedge_wins").inc();
  }
}

void HealthTracker::note_hedge_loss() {
  ++hedge_losses_;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.health.hedge_losses").inc();
  }
}

void HealthTracker::note_divergence(Divergence d) {
  divergences_.push_back(d);
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.health.divergences").inc();
  }
}

std::vector<HealthTracker::Divergence> HealthTracker::take_divergences() {
  std::vector<Divergence> out;
  out.swap(divergences_);
  return out;
}

void HealthTracker::note_repaired(std::uint64_t n) {
  repaired_ += n;
  if (metrics::Registry* r = metrics::current()) {
    r->counter("pario.health.repairs").inc(n);
  }
}

}  // namespace pario
