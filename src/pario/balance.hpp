// pario/balance.hpp — balanced I/O (SCF 3.0's file-size balancing).
//
// After the first SCF iteration each process has written a private
// integral file whose size depends on which integrals it happened to
// evaluate.  Subsequent iterations read the files in lock-step, so the
// largest file gates every iteration.  SCF 3.0 balances the file sizes
// after the write phase — "currently to within 10% or 1 MB, whichever is
// larger" — by shipping excess integral records from overfull to
// underfull processes.  This module implements that redistribution as a
// real collective: plan at rank 0, broadcast, pairwise transfers with the
// file I/O priced through the file system.
#pragma once

#include <cstdint>
#include <vector>

#include "mprt/comm.hpp"
#include "pfs/fs.hpp"
#include "simkit/task.hpp"

namespace pario {

struct BalanceOptions {
  double tolerance_fraction = 0.10;           // 10% of the mean
  std::uint64_t tolerance_bytes = 1ULL << 20;  // or 1 MB, whichever larger
};

struct BalanceMove {
  int from = 0;
  int to = 0;
  std::uint64_t bytes = 0;
  bool operator==(const BalanceMove&) const = default;
};

/// Pure planning: compute the moves that bring `sizes` within
/// max(tolerance_fraction * mean, tolerance_bytes) of the mean.
/// Deterministic greedy matching of the largest donor with the neediest
/// taker.
std::vector<BalanceMove> plan_balance(const std::vector<std::uint64_t>& sizes,
                                      const BalanceOptions& opts = {});

/// Collective: balance the per-rank private files `my_file` (one per
/// rank).  Returns every rank's post-balance file size.
simkit::Task<std::vector<std::uint64_t>> balance_files(
    mprt::Comm& comm, pfs::StripedFs& fs, pfs::FileId my_file,
    const BalanceOptions& opts = {});

}  // namespace pario
