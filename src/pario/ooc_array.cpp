#include "pario/ooc_array.hpp"

namespace pario {

std::vector<Extent> OutOfCoreArray::tile_extents(std::uint64_t r0,
                                                 std::uint64_t c0,
                                                 std::uint64_t nr,
                                                 std::uint64_t nc) const {
  assert(r0 + nr <= rows_ && c0 + nc <= cols_);
  std::vector<Extent> out;
  if (layout_ == Layout::kColMajor) {
    // One run per column; buffer is column-major within the tile.
    out.reserve(nc);
    for (std::uint64_t c = 0; c < nc; ++c) {
      out.push_back(Extent{offset_of(r0, c0 + c), nr * es_, c * nr * es_});
    }
  } else {
    out.reserve(nr);
    for (std::uint64_t r = 0; r < nr; ++r) {
      out.push_back(Extent{offset_of(r0 + r, c0), nc * es_, r * nc * es_});
    }
  }
  return coalesce(std::move(out));
}

simkit::Task<void> OutOfCoreArray::read_tile(hw::NodeId client,
                                             std::uint64_t r0,
                                             std::uint64_t c0,
                                             std::uint64_t nr,
                                             std::uint64_t nc,
                                             std::span<std::byte> out) {
  const bool with_data = !out.empty() && fs_->is_backed(file_);
  assert(!with_data || out.size() == nr * nc * es_);
  for (const Extent& e : tile_extents(r0, c0, nr, nc)) {
    std::span<std::byte> view;  // no ternary in co_await (GCC 12)
    if (with_data) view = out.subspan(e.buf_offset, e.length);
    co_await fs_->pread(client, file_, e.file_offset, e.length, view);
    ++io_calls_;
  }
}

simkit::Task<void> OutOfCoreArray::write_tile(
    hw::NodeId client, std::uint64_t r0, std::uint64_t c0, std::uint64_t nr,
    std::uint64_t nc, std::span<const std::byte> data) {
  const bool with_data = !data.empty() && fs_->is_backed(file_);
  assert(!with_data || data.size() == nr * nc * es_);
  for (const Extent& e : tile_extents(r0, c0, nr, nc)) {
    std::span<const std::byte> view;
    if (with_data) view = data.subspan(e.buf_offset, e.length);
    co_await fs_->pwrite(client, file_, e.file_offset, e.length, view);
    ++io_calls_;
  }
}

}  // namespace pario
