// pario/interface.hpp — the "efficient interface" optimization.
//
// The paper's SCF experiments compare three I/O interfaces to the same
// file system: (O) Fortran record I/O, (P) the PASSION library's direct
// calls, and (F) PASSION with prefetching.  Interface choice changes only
// the *software cost around each call* — per-call bookkeeping and buffer
// copies — yet Table 2 vs Table 3 shows a 1.7-1.8x read-time difference.
// IoInterface makes that cost model explicit and traces at its own level
// (so traced times include the interface overhead, as Pablo saw them).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "hw/machine.hpp"
#include "metrics/metrics.hpp"
#include "pario/resilient.hpp"
#include "pfs/fs.hpp"
#include "pfs/types.hpp"
#include "simkit/engine.hpp"
#include "simkit/task.hpp"

namespace pario {

struct InterfaceParams {
  std::string name;
  double call_overhead_ms = 0.0;  // per read/write, before the FS call
  double seek_overhead_ms = 0.0;  // per seek
  double open_close_overhead_ms = 0.0;
  /// Number of extra in-memory passes over the data (record buffering in
  /// the Fortran runtime copies through library buffers; PASSION hands
  /// the user buffer straight to the FS).
  int copy_passes = 0;

  /// Fortran unformatted record I/O through the runtime library: heavy
  /// per-call bookkeeping plus two buffer passes (record assembly +
  /// copy-out).
  static InterfaceParams fortran();
  /// PASSION direct calls: thin veneer over the parallel file system.
  static InterfaceParams passion();
};

/// A file accessed through a specific interface.  Owns the cursor; traces
/// every operation (including interface overhead) to the observer.
class IoInterface {
 public:
  IoInterface(pfs::StripedFs& fs, pfs::FileHandle handle,
              InterfaceParams params, pfs::IoObserver* observer = nullptr)
      : fs_(&fs), h_(handle), p_(std::move(params)), observer_(observer) {
    h_.set_observer(nullptr);  // tracing happens here, not underneath
    m_.resolve(p_.name);
  }

  const InterfaceParams& params() const noexcept { return p_; }
  pfs::FileHandle& handle() noexcept { return h_; }

  /// Route this interface's data operations through the retry/backoff
  /// policy (pario/resilient.hpp).  Off by default: without a policy the
  /// interface calls the file system directly and any pfs::IoError
  /// surfaces to the caller unretried.
  void set_resilience(RetryPolicy policy, RetryStats* stats = nullptr) {
    resilient_ = true;
    retry_ = policy;
    retry_stats_ = stats;
  }
  bool resilient() const noexcept { return resilient_; }
  std::uint64_t tell() const noexcept { return pos_; }
  hw::Machine& machine() noexcept { return fs_->machine(); }
  simkit::Engine& engine() noexcept { return fs_->machine().engine(); }

  simkit::Task<void> read(std::uint64_t len, std::span<std::byte> out = {});
  simkit::Task<void> write(std::uint64_t len,
                           std::span<const std::byte> data = {});
  simkit::Task<void> pread(std::uint64_t offset, std::uint64_t len,
                           std::span<std::byte> out = {});
  simkit::Task<void> pwrite(std::uint64_t offset, std::uint64_t len,
                            std::span<const std::byte> data = {});
  simkit::Task<void> seek(std::uint64_t pos);
  simkit::Task<void> flush();
  simkit::Task<void> close();

  /// Asynchronous read (PASSION iread) — no interface overhead is charged
  /// at issue; the Prefetcher accounts wait and copy time explicitly.
  simkit::ProcHandle iread(std::uint64_t offset, std::uint64_t len,
                           std::span<std::byte> out = {}) {
    return h_.iread(offset, len, out);
  }

  /// Open `file` through this interface (pays interface open overhead on
  /// top of the file-system open round-trip).
  static simkit::Task<IoInterface> open(pfs::StripedFs& fs,
                                        hw::NodeId client, pfs::FileId file,
                                        InterfaceParams params,
                                        pfs::IoObserver* observer = nullptr);

 private:
  simkit::Task<void> data_op(pfs::OpKind kind, std::uint64_t offset,
                             std::uint64_t len, std::span<std::byte> out,
                             std::span<const std::byte> in);

  /// Per-interface-mode instruments (pario.iface.<mode>.<op>.*), resolved
  /// once at construction from the installed registry; inert when metrics
  /// are off.  These are the per-call latency/byte distributions the
  /// paper's Tables 2-3 compare across interfaces.
  struct Meters {
    void resolve(const std::string& mode);
    void note(pfs::OpKind kind, simkit::Duration latency,
              std::uint64_t bytes) const;
    std::array<metrics::Counter*,
               static_cast<std::size_t>(pfs::OpKind::kCount)>
        calls{};
    std::array<metrics::Histogram*,
               static_cast<std::size_t>(pfs::OpKind::kCount)>
        latency_s{};
    metrics::Histogram* read_bytes = nullptr;
    metrics::Histogram* write_bytes = nullptr;
  };

  pfs::StripedFs* fs_;
  pfs::FileHandle h_;
  InterfaceParams p_;
  pfs::IoObserver* observer_;
  Meters m_;
  std::uint64_t pos_ = 0;
  bool resilient_ = false;
  RetryPolicy retry_;
  RetryStats* retry_stats_ = nullptr;
};

}  // namespace pario
