// pario/datatype.hpp — MPI-derived-datatype-style access descriptions.
//
// The paper's optimized BTIO "completely describes the solution vector by
// using MPI data types" and hands it to collective I/O in one call.  This
// module provides that vocabulary: a DataType is a byte-granular pattern
// (contiguous / strided vector / indexed), and a FileView (after
// MPI_File_set_view) tiles a datatype over a file so that a *logical*
// stream offset maps to scattered *physical* extents — which feed
// directly into TwoPhase, data sieving, or plain positioned I/O.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "pario/extent.hpp"

namespace pario {

class DataType {
 public:
  /// `bytes` contiguous bytes.
  static DataType contiguous(std::uint64_t bytes);
  /// `count` blocks of `blocklen` bytes, consecutive block starts
  /// `stride` bytes apart (stride >= blocklen).
  static DataType vector(std::uint64_t count, std::uint64_t blocklen,
                         std::uint64_t stride);
  /// Arbitrary (offset, length) pieces; offsets ascending, non-overlapping.
  static DataType indexed(
      std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces);

  /// Payload bytes per instance (sum of piece lengths).
  std::uint64_t size() const noexcept { return size_; }
  /// Bytes of file the instance spans (next instance starts here).
  std::uint64_t extent() const noexcept { return extent_; }
  /// Widen the extent (MPI_Type_create_resized) — e.g. to skip other
  /// ranks' interleaved data between instances.
  DataType resized(std::uint64_t new_extent) const;

  std::size_t piece_count() const noexcept { return pieces_.size(); }

  /// One instance's extents at absolute file offset `file_offset`,
  /// payload mapped to buffer offsets starting at `buf_offset`.
  std::vector<Extent> flatten(std::uint64_t file_offset,
                              std::uint64_t buf_offset = 0) const;

 private:
  DataType(std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces,
           std::uint64_t extent);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces_;
  std::uint64_t size_ = 0;
  std::uint64_t extent_ = 0;
};

/// A file window: `filetype` tiled from displacement `disp` onward.  The
/// logical stream is the concatenation of every instance's payload.
class FileView {
 public:
  FileView(std::uint64_t disp, DataType filetype)
      : disp_(disp), type_(std::move(filetype)) {}

  std::uint64_t displacement() const noexcept { return disp_; }
  const DataType& filetype() const noexcept { return type_; }

  /// Physical extents backing logical [view_offset, view_offset+length),
  /// with buffer offsets 0..length.  Extents are coalesced.
  std::vector<Extent> map(std::uint64_t view_offset,
                          std::uint64_t length) const;

  /// Physical file offset of a single logical byte.
  std::uint64_t physical_of(std::uint64_t view_offset) const;

 private:
  std::uint64_t disp_;
  DataType type_;
};

}  // namespace pario
