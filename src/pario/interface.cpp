#include "pario/interface.hpp"

namespace pario {

namespace {
const char* op_name(pfs::OpKind kind) {
  switch (kind) {
    case pfs::OpKind::kOpen:  return "open";
    case pfs::OpKind::kRead:  return "read";
    case pfs::OpKind::kSeek:  return "seek";
    case pfs::OpKind::kWrite: return "write";
    case pfs::OpKind::kFlush: return "flush";
    case pfs::OpKind::kClose: return "close";
    default:                  return "other";
  }
}
}  // namespace

void IoInterface::Meters::resolve(const std::string& mode) {
  metrics::Registry* r = metrics::current();
  if (!r) return;
  const std::string prefix = "pario.iface." + mode + ".";
  for (std::size_t k = 0; k < static_cast<std::size_t>(pfs::OpKind::kCount);
       ++k) {
    const std::string op = op_name(static_cast<pfs::OpKind>(k));
    calls[k] = &r->counter(prefix + op + ".calls");
    latency_s[k] = &r->histogram(prefix + op + ".latency_s");
  }
  // Byte distributions use a 1-byte unit (latencies keep the 1 us default).
  read_bytes = &r->histogram(prefix + "read.bytes", /*unit=*/1.0);
  write_bytes = &r->histogram(prefix + "write.bytes", /*unit=*/1.0);
}

void IoInterface::Meters::note(pfs::OpKind kind, simkit::Duration latency,
                               std::uint64_t bytes) const {
  const auto k = static_cast<std::size_t>(kind);
  if (!calls[k]) return;
  calls[k]->inc();
  latency_s[k]->observe(latency);
  if (bytes > 0) {
    if (kind == pfs::OpKind::kRead) {
      read_bytes->observe(static_cast<double>(bytes));
    } else if (kind == pfs::OpKind::kWrite) {
      write_bytes->observe(static_cast<double>(bytes));
    }
  }
}

InterfaceParams InterfaceParams::fortran() {
  InterfaceParams p;
  p.name = "fortran";
  // Record-oriented unformatted I/O: record length bookkeeping, blank
  // record padding, and a slow trap path — calibrated so the SCF 1.1
  // 64 KB read path lands ~1.7-1.8x slower than PASSION (Table 2 vs 3).
  p.call_overhead_ms = 12.0;
  p.seek_overhead_ms = 7.5;   // Fortran repositioning re-scans records
  p.open_close_overhead_ms = 70.0;
  p.copy_passes = 2;          // assemble into record buffer, copy out
  return p;
}

InterfaceParams InterfaceParams::passion() {
  InterfaceParams p;
  p.name = "passion";
  p.call_overhead_ms = 0.15;
  p.seek_overhead_ms = 0.05;
  p.open_close_overhead_ms = 12.0;
  p.copy_passes = 0;          // direct user-buffer I/O
  return p;
}

simkit::Task<IoInterface> IoInterface::open(pfs::StripedFs& fs,
                                            hw::NodeId client,
                                            pfs::FileId file,
                                            InterfaceParams params,
                                            pfs::IoObserver* observer) {
  simkit::Engine& eng = fs.machine().engine();
  const simkit::Time t0 = eng.now();
  co_await eng.delay(simkit::milliseconds(params.open_close_overhead_ms));
  pfs::FileHandle h = co_await fs.open(client, file, nullptr);
  IoInterface io(fs, h, params, observer);
  if (observer) {
    observer->record(pfs::OpKind::kOpen, t0, eng.now() - t0, 0);
  }
  io.m_.note(pfs::OpKind::kOpen, eng.now() - t0, 0);
  co_return io;
}

simkit::Task<void> IoInterface::data_op(pfs::OpKind kind,
                                        std::uint64_t offset,
                                        std::uint64_t len,
                                        std::span<std::byte> out,
                                        std::span<const std::byte> in) {
  simkit::Engine& eng = fs_->machine().engine();
  const simkit::Time t0 = eng.now();
  co_await eng.delay(simkit::milliseconds(p_.call_overhead_ms));
  for (int pass = 0; pass < p_.copy_passes; ++pass) {
    co_await fs_->machine().mem_copy(len);
  }
  if (resilient_) {
    if (kind == pfs::OpKind::kRead) {
      co_await resilient_pread(*fs_, h_.client(), h_.file(), offset, len,
                               out, retry_, retry_stats_);
    } else {
      co_await resilient_pwrite(*fs_, h_.client(), h_.file(), offset, len,
                                in, retry_, retry_stats_);
    }
  } else if (kind == pfs::OpKind::kRead) {
    co_await fs_->pread(h_.client(), h_.file(), offset, len, out);
  } else {
    co_await fs_->pwrite(h_.client(), h_.file(), offset, len, in);
  }
  if (observer_) observer_->record(kind, t0, eng.now() - t0, len);
  m_.note(kind, eng.now() - t0, len);
}

simkit::Task<void> IoInterface::read(std::uint64_t len,
                                     std::span<std::byte> out) {
  const std::uint64_t at = pos_;
  pos_ += len;
  co_await data_op(pfs::OpKind::kRead, at, len, out, {});
}

simkit::Task<void> IoInterface::write(std::uint64_t len,
                                      std::span<const std::byte> data) {
  const std::uint64_t at = pos_;
  pos_ += len;
  co_await data_op(pfs::OpKind::kWrite, at, len, {}, data);
}

simkit::Task<void> IoInterface::pread(std::uint64_t offset, std::uint64_t len,
                                      std::span<std::byte> out) {
  co_await data_op(pfs::OpKind::kRead, offset, len, out, {});
}

simkit::Task<void> IoInterface::pwrite(std::uint64_t offset,
                                       std::uint64_t len,
                                       std::span<const std::byte> data) {
  co_await data_op(pfs::OpKind::kWrite, offset, len, {}, data);
}

simkit::Task<void> IoInterface::seek(std::uint64_t pos) {
  simkit::Engine& eng = fs_->machine().engine();
  const simkit::Time t0 = eng.now();
  co_await eng.delay(simkit::milliseconds(p_.seek_overhead_ms));
  co_await h_.seek(pos);  // pays the FS client-syscall cost
  pos_ = pos;
  if (observer_) {
    observer_->record(pfs::OpKind::kSeek, t0, eng.now() - t0, 0);
  }
  m_.note(pfs::OpKind::kSeek, eng.now() - t0, 0);
}

simkit::Task<void> IoInterface::flush() {
  simkit::Engine& eng = fs_->machine().engine();
  const simkit::Time t0 = eng.now();
  co_await h_.flush();
  if (observer_) {
    observer_->record(pfs::OpKind::kFlush, t0, eng.now() - t0, 0);
  }
  m_.note(pfs::OpKind::kFlush, eng.now() - t0, 0);
}

simkit::Task<void> IoInterface::close() {
  simkit::Engine& eng = fs_->machine().engine();
  const simkit::Time t0 = eng.now();
  co_await eng.delay(simkit::milliseconds(p_.open_close_overhead_ms));
  co_await h_.close();
  if (observer_) {
    observer_->record(pfs::OpKind::kClose, t0, eng.now() - t0, 0);
  }
  m_.note(pfs::OpKind::kClose, eng.now() - t0, 0);
}

}  // namespace pario
