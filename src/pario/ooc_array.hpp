// pario/ooc_array.hpp — 2-D out-of-core arrays with explicit file layout.
//
// The FFT experiment's "layout optimization" is exactly this: a disk-
// resident matrix stored column-major serves tall tiles in a few large
// contiguous reads but wide tiles in many small strided ones.  Changing
// one array's file layout makes both sides of an out-of-core transpose
// contiguous (paper §4.4, ref [7] automates the choice in a compiler).
//
// Tile buffers are in *file order*: the file's fastest-varying dimension
// is fastest in the buffer (column-major file => column-major tile).
// Callers convert with numeric::transpose when they need the other order.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pario/extent.hpp"
#include "pfs/fs.hpp"
#include "simkit/task.hpp"

namespace pario {

enum class Layout : std::uint8_t { kRowMajor, kColMajor };

constexpr const char* to_string(Layout l) {
  return l == Layout::kRowMajor ? "row-major" : "col-major";
}

class OutOfCoreArray {
 public:
  /// Create the backing file and describe the array geometry.
  static OutOfCoreArray create(pfs::StripedFs& fs, const std::string& name,
                               std::uint64_t rows, std::uint64_t cols,
                               std::uint32_t elem_size, Layout layout,
                               bool backed = false) {
    return OutOfCoreArray(fs, fs.create(name, backed), rows, cols, elem_size,
                          layout);
  }

  OutOfCoreArray(pfs::StripedFs& fs, pfs::FileId file, std::uint64_t rows,
                 std::uint64_t cols, std::uint32_t elem_size, Layout layout)
      : fs_(&fs),
        file_(file),
        rows_(rows),
        cols_(cols),
        es_(elem_size),
        layout_(layout) {}

  pfs::FileId file() const noexcept { return file_; }
  std::uint64_t rows() const noexcept { return rows_; }
  std::uint64_t cols() const noexcept { return cols_; }
  std::uint32_t elem_size() const noexcept { return es_; }
  Layout layout() const noexcept { return layout_; }
  std::uint64_t total_bytes() const noexcept { return rows_ * cols_ * es_; }

  /// Byte offset of element (r, c) in the file.
  std::uint64_t offset_of(std::uint64_t r, std::uint64_t c) const {
    assert(r < rows_ && c < cols_);
    return layout_ == Layout::kRowMajor ? (r * cols_ + c) * es_
                                        : (c * rows_ + r) * es_;
  }

  /// File extents of the tile [r0, r0+nr) x [c0, c0+nc), with buf_offsets
  /// laid out in file order, already coalesced.  The extent count is the
  /// whole layout story: a col-major array yields nc extents of nr
  /// elements each (or 1 if the tile spans whole columns); row-major the
  /// transpose of that.
  std::vector<Extent> tile_extents(std::uint64_t r0, std::uint64_t c0,
                                   std::uint64_t nr, std::uint64_t nc) const;

  /// Tile I/O: one positioned call per (coalesced) extent — exactly what a
  /// straightforward out-of-core code does.
  simkit::Task<void> read_tile(hw::NodeId client, std::uint64_t r0,
                               std::uint64_t c0, std::uint64_t nr,
                               std::uint64_t nc,
                               std::span<std::byte> out = {});
  simkit::Task<void> write_tile(hw::NodeId client, std::uint64_t r0,
                                std::uint64_t c0, std::uint64_t nr,
                                std::uint64_t nc,
                                std::span<const std::byte> data = {});

  std::uint64_t io_calls() const noexcept { return io_calls_; }

 private:
  pfs::StripedFs* fs_;
  pfs::FileId file_;
  std::uint64_t rows_;
  std::uint64_t cols_;
  std::uint32_t es_;
  Layout layout_;
  std::uint64_t io_calls_ = 0;
};

}  // namespace pario
