#include "pario/advisor.hpp"

#include <algorithm>
#include <cstdio>

namespace pario {

std::uint64_t tile_run_count(Layout layout, std::uint64_t rows,
                             std::uint64_t cols, std::uint64_t nr,
                             std::uint64_t nc) {
  // Column-major: one run per tile column (nc runs), except a full-height
  // tile, whose adjacent column runs coalesce into one.  Row-major is the
  // mirror image.
  if (layout == Layout::kColMajor) {
    return nr == rows ? 1 : nc;
  }
  return nc == cols ? 1 : nr;
}

void LayoutAdvisor::observe(const std::string& array, std::uint64_t rows,
                            std::uint64_t cols, std::uint64_t tile_rows,
                            std::uint64_t tile_cols, std::uint64_t times) {
  AccessPattern& p = arrays_[array];
  p.rows = rows;
  p.cols = cols;
  p.calls_col_major +=
      times * tile_run_count(Layout::kColMajor, rows, cols, tile_rows,
                             tile_cols);
  p.calls_row_major +=
      times * tile_run_count(Layout::kRowMajor, rows, cols, tile_rows,
                             tile_cols);
}

std::uint64_t LayoutAdvisor::estimated_calls(const std::string& array,
                                             Layout layout) const {
  auto it = arrays_.find(array);
  if (it == arrays_.end()) return 0;
  return layout == Layout::kColMajor ? it->second.calls_col_major
                                     : it->second.calls_row_major;
}

Layout LayoutAdvisor::recommend(const std::string& array) const {
  auto it = arrays_.find(array);
  if (it == arrays_.end()) return Layout::kColMajor;
  return it->second.calls_row_major < it->second.calls_col_major
             ? Layout::kRowMajor
             : Layout::kColMajor;
}

double LayoutAdvisor::improvement(const std::string& array) const {
  auto it = arrays_.find(array);
  if (it == arrays_.end()) return 1.0;
  const auto lo = std::min(it->second.calls_col_major,
                           it->second.calls_row_major);
  const auto hi = std::max(it->second.calls_col_major,
                           it->second.calls_row_major);
  return lo == 0 ? 1.0
                 : static_cast<double>(hi) / static_cast<double>(lo);
}

std::string LayoutAdvisor::report() const {
  std::string out =
      "array            col-major calls  row-major calls  recommend\n";
  char line[160];
  for (const auto& [name, p] : arrays_) {
    std::snprintf(line, sizeof line, "%-16s %15llu  %15llu  %s (%.1fx)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(p.calls_col_major),
                  static_cast<unsigned long long>(p.calls_row_major),
                  to_string(recommend(name)), improvement(name));
    out += line;
  }
  return out;
}

}  // namespace pario
