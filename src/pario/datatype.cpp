#include "pario/datatype.hpp"

#include <cassert>

namespace pario {

DataType::DataType(
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces,
    std::uint64_t extent)
    : pieces_(std::move(pieces)), extent_(extent) {
  [[maybe_unused]] std::uint64_t prev_end = 0;
  for (const auto& [off, len] : pieces_) {
    assert(len > 0);
    assert(off >= prev_end && "pieces must be ascending, non-overlapping");
    prev_end = off + len;
    (void)prev_end;
    size_ += len;
  }
  assert(extent_ >= prev_end);
}

DataType DataType::contiguous(std::uint64_t bytes) {
  assert(bytes > 0);
  return DataType({{0, bytes}}, bytes);
}

DataType DataType::vector(std::uint64_t count, std::uint64_t blocklen,
                          std::uint64_t stride) {
  assert(count > 0 && blocklen > 0 && stride >= blocklen);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces;
  pieces.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    pieces.emplace_back(i * stride, blocklen);
  }
  // MPI extent: from the first byte to the end of the last block.
  return DataType(std::move(pieces), (count - 1) * stride + blocklen);
}

DataType DataType::indexed(
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces) {
  assert(!pieces.empty());
  const std::uint64_t extent = pieces.back().first + pieces.back().second;
  return DataType(std::move(pieces), extent);
}

DataType DataType::resized(std::uint64_t new_extent) const {
  DataType d = *this;
  assert(new_extent >= (pieces_.empty()
                            ? 0
                            : pieces_.back().first + pieces_.back().second));
  d.extent_ = new_extent;
  return d;
}

std::vector<Extent> DataType::flatten(std::uint64_t file_offset,
                                      std::uint64_t buf_offset) const {
  std::vector<Extent> out;
  out.reserve(pieces_.size());
  std::uint64_t buf = buf_offset;
  for (const auto& [off, len] : pieces_) {
    out.push_back(Extent{file_offset + off, len, buf});
    buf += len;
  }
  return out;
}

std::vector<Extent> FileView::map(std::uint64_t view_offset,
                                  std::uint64_t length) const {
  std::vector<Extent> out;
  if (length == 0) return out;
  const std::uint64_t tsize = type_.size();
  std::uint64_t remaining = length;
  std::uint64_t vpos = view_offset;
  std::uint64_t buf = 0;
  while (remaining > 0) {
    const std::uint64_t instance = vpos / tsize;
    const std::uint64_t within = vpos % tsize;
    // Walk this instance's pieces, skipping `within` payload bytes.
    auto instance_extents =
        type_.flatten(disp_ + instance * type_.extent());
    std::uint64_t skip = within;
    for (const Extent& e : instance_extents) {
      if (remaining == 0) break;
      if (skip >= e.length) {
        skip -= e.length;
        continue;
      }
      const std::uint64_t take = std::min(e.length - skip, remaining);
      out.push_back(Extent{e.file_offset + skip, take, buf});
      buf += take;
      vpos += take;
      remaining -= take;
      skip = 0;
    }
  }
  return coalesce(std::move(out));
}

std::uint64_t FileView::physical_of(std::uint64_t view_offset) const {
  auto one = map(view_offset, 1);
  return one.front().file_offset;
}

}  // namespace pario
