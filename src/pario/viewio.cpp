#include "pario/viewio.hpp"

namespace pario {

simkit::Task<void> view_read(mprt::Comm& comm, pfs::StripedFs& fs,
                             pfs::FileId file, const FileView& view,
                             std::uint64_t view_offset, std::uint64_t length,
                             ViewStrategy strategy,
                             std::span<std::byte> out) {
  std::vector<Extent> extents = view.map(view_offset, length);
  switch (strategy) {
    case ViewStrategy::kIndependent:
      co_await direct_read(fs, comm.node(), file, extents, out);
      break;
    case ViewStrategy::kSieved:
      co_await sieved_read(fs, comm.node(), file, std::move(extents), out);
      break;
    case ViewStrategy::kCollective:
      co_await TwoPhase::read(comm, fs, file, std::move(extents), out);
      break;
  }
}

simkit::Task<void> view_write(mprt::Comm& comm, pfs::StripedFs& fs,
                              pfs::FileId file, const FileView& view,
                              std::uint64_t view_offset,
                              std::uint64_t length, ViewStrategy strategy,
                              std::span<const std::byte> data) {
  std::vector<Extent> extents = view.map(view_offset, length);
  switch (strategy) {
    case ViewStrategy::kIndependent:
      for (const Extent& e : extents) {
        std::span<const std::byte> piece;
        if (!data.empty()) piece = data.subspan(e.buf_offset, e.length);
        co_await fs.pwrite(comm.node(), file, e.file_offset, e.length,
                           piece);
      }
      break;
    case ViewStrategy::kSieved:
      co_await sieved_write(fs, comm.node(), file, std::move(extents),
                            data);
      break;
    case ViewStrategy::kCollective:
      co_await TwoPhase::write(comm, fs, file, std::move(extents), data);
      break;
  }
}

}  // namespace pario
