#include "pario/balance.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>

#include "mprt/collectives.hpp"

namespace pario {

std::vector<BalanceMove> plan_balance(const std::vector<std::uint64_t>& sizes,
                                      const BalanceOptions& opts) {
  const int p = static_cast<int>(sizes.size());
  if (p <= 1) return {};
  const std::uint64_t total =
      std::accumulate(sizes.begin(), sizes.end(), std::uint64_t{0});
  const std::uint64_t mean = total / static_cast<std::uint64_t>(p);
  const std::uint64_t tol = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(opts.tolerance_fraction *
                                 static_cast<double>(mean)),
      opts.tolerance_bytes);

  // Signed imbalance per rank.
  std::vector<std::int64_t> delta(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    delta[i] = static_cast<std::int64_t>(sizes[i]) -
               static_cast<std::int64_t>(mean);
  }

  std::vector<BalanceMove> moves;
  // Greedy: repeatedly move from the biggest surplus to the biggest
  // deficit until everyone is within tolerance.  Deterministic (stable
  // index tie-breaks), terminates because every move strictly reduces the
  // donor's surplus below tolerance or fills the taker.
  for (;;) {
    auto donor = std::max_element(delta.begin(), delta.end());
    auto taker = std::min_element(delta.begin(), delta.end());
    if (*donor <= static_cast<std::int64_t>(tol) &&
        -*taker <= static_cast<std::int64_t>(tol)) {
      break;
    }
    const std::int64_t amount = std::min(*donor, -*taker);
    assert(amount > 0);
    moves.push_back(BalanceMove{
        static_cast<int>(donor - delta.begin()),
        static_cast<int>(taker - delta.begin()),
        static_cast<std::uint64_t>(amount)});
    *donor -= amount;
    *taker += amount;
  }
  return moves;
}

simkit::Task<std::vector<std::uint64_t>> balance_files(
    mprt::Comm& comm, pfs::StripedFs& fs, pfs::FileId my_file,
    const BalanceOptions& opts) {
  const int p = comm.size();
  const int r = comm.rank();

  // Gather sizes, plan at rank 0, broadcast the plan.
  std::uint64_t my_size = fs.file_size(my_file);
  auto size_msgs = co_await mprt::gatherv(
      comm, 0, 8,
      std::span<const std::byte>(reinterpret_cast<std::byte*>(&my_size), 8));
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(p), 0);
  std::vector<BalanceMove> moves;
  if (r == 0) {
    for (int i = 0; i < p; ++i) {
      std::memcpy(&sizes[static_cast<std::size_t>(i)],
                  size_msgs[static_cast<std::size_t>(i)].payload.data(), 8);
    }
    moves = plan_balance(sizes, opts);
  }
  // Serialize sizes + moves: [P sizes][n_moves][(from,to,bytes)...].
  std::vector<std::byte> plan;
  if (r == 0) {
    const std::uint64_t n_moves = moves.size();
    plan.resize(static_cast<std::size_t>(p) * 8 + 8 + moves.size() * 24);
    std::memcpy(plan.data(), sizes.data(), static_cast<std::size_t>(p) * 8);
    std::memcpy(plan.data() + static_cast<std::size_t>(p) * 8, &n_moves, 8);
    for (std::size_t i = 0; i < moves.size(); ++i) {
      std::uint64_t rec[3] = {static_cast<std::uint64_t>(moves[i].from),
                              static_cast<std::uint64_t>(moves[i].to),
                              moves[i].bytes};
      std::memcpy(plan.data() + static_cast<std::size_t>(p) * 8 + 8 + i * 24,
                  rec, 24);
    }
  }
  std::uint64_t plan_size = plan.size();
  co_await mprt::bcast(
      comm, 0, 8,
      std::span<std::byte>(reinterpret_cast<std::byte*>(&plan_size), 8));
  plan.resize(plan_size);
  co_await mprt::bcast(comm, 0, plan_size, plan);
  if (r != 0) {
    std::memcpy(sizes.data(), plan.data(), static_cast<std::size_t>(p) * 8);
    std::uint64_t n_moves = 0;
    std::memcpy(&n_moves, plan.data() + static_cast<std::size_t>(p) * 8, 8);
    moves.resize(n_moves);
    for (std::size_t i = 0; i < n_moves; ++i) {
      std::uint64_t rec[3];
      std::memcpy(rec,
                  plan.data() + static_cast<std::size_t>(p) * 8 + 8 + i * 24,
                  24);
      moves[i] = BalanceMove{static_cast<int>(rec[0]),
                             static_cast<int>(rec[1]), rec[2]};
    }
  }

  // Execute: donors read their tail and send; takers receive and append.
  // Moves are executed in plan order with per-move tags so concurrent
  // pairs do not interfere.
  std::vector<std::uint64_t> new_sizes = sizes;
  constexpr int kBalanceTag = 1 << 19;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const auto& mv = moves[i];
    const auto from = static_cast<std::size_t>(mv.from);
    const auto to = static_cast<std::size_t>(mv.to);
    if (r == mv.from) {
      // Donate the current tail of my private file, then shrink it.
      co_await fs.pread(comm.node(), my_file, new_sizes[from] - mv.bytes,
                        mv.bytes);
      co_await comm.send(mv.to, kBalanceTag + static_cast<int>(i), mv.bytes);
      co_await fs.truncate(comm.node(), my_file, new_sizes[from] - mv.bytes);
    } else if (r == mv.to) {
      (void)co_await comm.recv(mv.from, kBalanceTag + static_cast<int>(i));
      co_await fs.pwrite(comm.node(), my_file, new_sizes[to], mv.bytes);
    }
    // Everyone tracks the bookkeeping so offsets stay consistent.
    new_sizes[from] -= mv.bytes;
    new_sizes[to] += mv.bytes;
  }
  co_await mprt::barrier(comm);
  co_return new_sizes;
}

}  // namespace pario
