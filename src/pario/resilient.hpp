// pario/resilient.hpp — retry/backoff recovery over the striped FS.
//
// The fault layer makes requests fail with a typed pfs::IoError; this is
// the policy that decides recovery at the client:
//   - transient errors are retried up to max_attempts with exponential
//     backoff in *simulated* time (the classic congestion-polite ladder),
//   - node-down errors fail over to a replica stripe when one is
//     configured (a mirror file laid out on different servers), otherwise
//     they ride the same retry ladder — a short outage is survivable, a
//     long one exhausts the ladder and surfaces to the caller,
//   - an operation that exhausts its attempts rethrows the last IoError,
//     which is the checkpoint/restart layer's signal to roll back.
//
// A failed striped operation is re-issued in full.  Reads are idempotent
// and writes land whole stripe pieces, so the re-issue is safe; the
// repeated pieces cost simulated time, which is exactly the penalty a
// real client pays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pario/health.hpp"
#include "pfs/fs.hpp"
#include "simkit/task.hpp"

namespace pario {

struct RetryPolicy {
  int max_attempts = 4;            // total tries per operation (>= 1)
  double backoff_ms = 5.0;         // delay before the first retry
  double backoff_multiplier = 2.0; // exponential ladder
  /// Mirror file to fail over to on a node-down error (same offsets).
  /// kInvalidFile (default) disables fail-over.
  pfs::FileId replica = pfs::kInvalidFile;
  /// Optional health feed: completions update the tracker's per-server
  /// EWMA latency and error scores, and failed-over writes land in its
  /// divergence ledger.  Null (default) observes nothing.
  HealthTracker* health = nullptr;
  /// Straggler hedging for reads: once the primary read has been
  /// outstanding for this multiple of the tracker's expected latency, the
  /// same range is re-issued against the replica and the first completion
  /// wins.  Requires `health` and `replica`; 0 (default) disables.  Never
  /// hedges before the tracker has latency samples.
  double hedge_latency_multiple = 0.0;

  /// Reject nonsensical configurations (max_attempts < 1, negative
  /// backoff, multiplier < 1, negative hedge multiple) with
  /// std::invalid_argument.  The resilient_* entry points call this
  /// before any simulated time elapses.
  void validate() const;
};

/// Per-callsite retry accounting.  The fields are the compatibility
/// accessor (readers across ckpt/exp/tests consume them directly); all
/// accounting flows through the note_* entry points below, which also
/// mirror every event into the installed metrics registry (pario.retry.*)
/// — there is exactly one place each counter is bumped.
struct RetryStats {
  std::uint64_t attempts = 0;   // operations issued (first tries + retries)
  std::uint64_t retries = 0;    // re-issues after a failure
  std::uint64_t failovers = 0;  // operations redirected to the replica
  std::uint64_t exhausted = 0;  // operations that gave up
  /// Writes that landed only on the replica because the primary's node
  /// was down.  Each one leaves the pair divergent: once the primary
  /// reboots, reading it returns stale bytes with no error.  Callers that
  /// read the primary later must reconcile (rewrite both copies, as the
  /// checkpoint engine does) whenever this is non-zero.
  std::uint64_t diverged_writes = 0;
  simkit::Duration backoff_time = 0.0;  // simulated time spent backing off

  void note_attempt();
  void note_retry(simkit::Duration backoff);
  /// `write` marks the redirected operation as a divergence-creating one.
  void note_failover(bool write);
  void note_exhausted();

  void merge(const RetryStats& o) {
    attempts += o.attempts;
    retries += o.retries;
    failovers += o.failovers;
    exhausted += o.exhausted;
    diverged_writes += o.diverged_writes;
    backoff_time += o.backoff_time;
  }
};

/// pread with retry/backoff/fail-over.  Throws pfs::IoError only after the
/// policy is exhausted, and std::invalid_argument immediately (before the
/// coroutine runs) on an invalid policy.  (Coroutine parameters are by
/// value, repo-wide; these wrappers validate eagerly, then delegate.)
simkit::Task<void> resilient_pread(pfs::StripedFs& fs, hw::NodeId client,
                                   pfs::FileId file, std::uint64_t offset,
                                   std::uint64_t len,
                                   std::span<std::byte> out,
                                   RetryPolicy policy,
                                   RetryStats* stats = nullptr);

/// pwrite with retry/backoff/fail-over.  On a node-down error the write is
/// redirected to the replica ONLY — the primary is left untouched and
/// becomes stale once its node reboots (counted in
/// RetryStats::diverged_writes).  Callers that later read the primary must
/// reconcile the pair themselves, e.g. by rewriting both copies on the
/// next update as the checkpoint engine does.
simkit::Task<void> resilient_pwrite(pfs::StripedFs& fs, hw::NodeId client,
                                    pfs::FileId file, std::uint64_t offset,
                                    std::uint64_t len,
                                    std::span<const std::byte> data,
                                    RetryPolicy policy,
                                    RetryStats* stats = nullptr);

/// One placed piece of a vectored resilient write: `file_offset` in the
/// target file, `buf_offset` into the caller's staged payload.
struct WritePiece {
  std::uint64_t file_offset = 0;
  std::uint64_t length = 0;
  std::uint64_t buf_offset = 0;
};

/// Vectored resilient pwrite: issues one resilient_pwrite per piece, in
/// order, from a single staged buffer (`data` may be empty for timing-only
/// files).  This is the background checkpoint drain's write path — an
/// independent per-client stream of large calls that contends with
/// foreground I/O at the I/O nodes; it deliberately does NOT aggregate
/// across clients (no collective — the caller may be a detached task).
/// Throws the first piece's exhausted pfs::IoError; earlier pieces stay
/// written (idempotent re-issue is the caller's rollback story).
simkit::Task<void> resilient_pwritev(pfs::StripedFs& fs, hw::NodeId client,
                                     pfs::FileId file,
                                     std::vector<WritePiece> pieces,
                                     std::span<const std::byte> data,
                                     RetryPolicy policy,
                                     RetryStats* stats = nullptr);

/// Durability barrier with retry/backoff: drains every acked-but-buffered
/// block of `file` to disk at its servers (pfs::StripedFs::fsync) and
/// completes only when the drain reports clean.  This is the client-side
/// entry point of the ordered_drain durability policy — the checkpoint
/// engine calls it before declaring a commit durable.  A drain failure
/// (node crash mid-drain, media error) is retried on the same file up to
/// the policy's ladder; fsync never fails over to the replica, because a
/// replica drain cannot make the *primary's* acked bytes durable.  Throws
/// the last pfs::IoError once the ladder is exhausted.
simkit::Task<void> resilient_fsync(pfs::StripedFs& fs, hw::NodeId client,
                                   pfs::FileId file, RetryPolicy policy,
                                   RetryStats* stats = nullptr);

/// Reconcile every range in the tracker's divergence ledger: re-read the
/// authoritative replica copy and rewrite the stale primary, through the
/// same resilient policy.  Counts repairs in the tracker.  The ledger is
/// drained up front; ranges whose repair itself exhausts the policy are
/// NOT re-queued (the next diverged write will re-report them).
simkit::Task<void> repair_divergences(pfs::StripedFs& fs, hw::NodeId client,
                                      HealthTracker& health,
                                      RetryPolicy policy,
                                      RetryStats* stats = nullptr);

}  // namespace pario
