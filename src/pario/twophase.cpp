#include "pario/twophase.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "metrics/metrics.hpp"
#include "mprt/collectives.hpp"

namespace pario {
namespace {

/// Registry instruments for one collective call (pario.twophase.*); all
/// null when metrics are off.  Resolved at call entry because TwoPhase is
/// stateless — there is no constructor to cache handles in.
struct TpMeters {
  TpMeters() {
    if (metrics::Registry* r = metrics::current()) {
      io_s = &r->histogram("pario.twophase.io_s");
      exchange_s = &r->histogram("pario.twophase.exchange_s");
      io_calls = &r->counter("pario.twophase.io_calls");
      io_bytes = &r->counter("pario.twophase.io_bytes");
    }
  }
  metrics::Histogram* io_s = nullptr;
  metrics::Histogram* exchange_s = nullptr;
  metrics::Counter* io_calls = nullptr;
  metrics::Counter* io_bytes = nullptr;
};

// ---------------------------------------------------------------------------
// Extent metadata exchange: every rank learns every rank's (sorted) piece
// list.  gatherv to rank 0 + broadcast of the concatenated table — the
// same global-view step MPI-IO implementations perform.
// ---------------------------------------------------------------------------

std::vector<std::byte> serialize_extents(const std::vector<Extent>& v) {
  std::vector<std::byte> out(v.size() * 16);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint64_t pair[2] = {v[i].file_offset, v[i].length};
    std::memcpy(out.data() + i * 16, pair, 16);
  }
  return out;
}

std::vector<Extent> deserialize_extents(std::span<const std::byte> bytes) {
  std::vector<Extent> v(bytes.size() / 16);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint64_t pair[2];
    std::memcpy(pair, bytes.data() + i * 16, 16);
    v[i] = Extent{pair[0], pair[1], 0};
  }
  return v;
}

simkit::Task<std::vector<std::vector<Extent>>> allgather_extents(
    mprt::Comm& c, const std::vector<Extent>& mine) {
  const int p = c.size();
  auto my_bytes = serialize_extents(mine);
  auto gathered = co_await mprt::gatherv(c, 0, my_bytes.size(), my_bytes);

  // Root concatenates [P x u64 counts][all extent pairs] and broadcasts.
  std::vector<std::byte> table;
  if (c.rank() == 0) {
    table.resize(static_cast<std::size_t>(p) * 8);
    for (int r = 0; r < p; ++r) {
      const std::uint64_t n = gathered[static_cast<std::size_t>(r)].payload
                                  .size() / 16;
      std::memcpy(table.data() + static_cast<std::size_t>(r) * 8, &n, 8);
    }
    for (int r = 0; r < p; ++r) {
      auto& pay = gathered[static_cast<std::size_t>(r)].payload;
      table.insert(table.end(), pay.begin(), pay.end());
    }
  }
  std::uint64_t table_size = table.size();
  std::span<std::byte> size_view(reinterpret_cast<std::byte*>(&table_size),
                                 8);
  co_await mprt::bcast(c, 0, 8, size_view);
  table.resize(table_size);
  co_await mprt::bcast(c, 0, table_size, table);

  std::vector<std::vector<Extent>> all(static_cast<std::size_t>(p));
  std::size_t cursor = static_cast<std::size_t>(p) * 8;
  for (int r = 0; r < p; ++r) {
    std::uint64_t n = 0;
    std::memcpy(&n, table.data() + static_cast<std::size_t>(r) * 8, 8);
    all[static_cast<std::size_t>(r)] = deserialize_extents(
        std::span<const std::byte>(table).subspan(cursor, n * 16));
    cursor += n * 16;
  }
  co_return all;
}

struct Domains {
  std::uint64_t lo = 0;
  std::uint64_t chunk = 0;  // size of each rank's file domain
  std::uint64_t hi = 0;

  std::pair<std::uint64_t, std::uint64_t> of(int rank) const {
    const std::uint64_t d_lo =
        lo + chunk * static_cast<std::uint64_t>(rank);
    return {std::min(d_lo, hi), std::min(d_lo + chunk, hi)};
  }
};

Domains make_domains(std::uint64_t lo, std::uint64_t hi, int p,
                     std::uint64_t stripe_unit) {
  if (hi <= lo) return {0, 0, 0};
  // Stripe-aligned domains keep each aggregator talking to a stable
  // subset of I/O nodes.
  std::uint64_t chunk = (hi - lo + static_cast<std::uint64_t>(p) - 1) /
                        static_cast<std::uint64_t>(p);
  chunk = (chunk + stripe_unit - 1) / stripe_unit * stripe_unit;
  return {lo, chunk, hi};
}

Domains partition(const std::vector<std::vector<Extent>>& all, int p,
                  std::uint64_t stripe_unit) {
  std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
  for (const auto& v : all) {
    for (const auto& e : v) {
      lo = std::min(lo, e.file_offset);
      hi = std::max(hi, e.file_end());
    }
  }
  return make_domains(lo, hi, p, stripe_unit);
}

// ---------------------------------------------------------------------------
// Hierarchical (aggregator-subset) path — active under a kTwoLevel
// collective topology.  The group leaders ARE the aggregators, so the
// rank->aggregator data motion rides the same leader routing the
// collectives use, and the O(P)-per-rank extent table is replaced by an
// allreduce of the global [lo, hi) bounds.  Per-source sub-extent lists —
// which the flat path reads out of the replicated table — are shipped
// inline as 16-byte (file_offset, length) records ahead of the data.
// ---------------------------------------------------------------------------

/// Global [lo, hi) of the collective access without the replicated extent
/// table: an allreduce of {min offset, -max end} under kMin.  Offsets ride
/// as doubles (exact below 2^53 — far beyond any simulated file).
simkit::Task<std::pair<std::uint64_t, std::uint64_t>> reduce_bounds(
    mprt::Comm& c, const std::vector<Extent>& mine) {
  double vals[2] = {std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity()};
  for (const auto& e : mine) {
    vals[0] = std::min(vals[0], static_cast<double>(e.file_offset));
    vals[1] = std::min(vals[1], -static_cast<double>(e.file_end()));
  }
  std::span<double> view(vals, 2);
  co_await mprt::allreduce(c, view, mprt::ReduceOp::kMin);
  std::pair<std::uint64_t, std::uint64_t> bounds{0, 0};
  if (std::isfinite(vals[0])) {
    bounds = {static_cast<std::uint64_t>(vals[0]),
              static_cast<std::uint64_t>(-vals[1])};
  }
  co_return bounds;
}

/// Record frame: [n u64][n x (file_offset u64, length u64)].  Data bytes,
/// when carried, follow the records in the same payload.
std::vector<std::byte> encode_records(const std::vector<Extent>& subs) {
  std::vector<std::byte> out(8 + subs.size() * 16);
  const std::uint64_t n = subs.size();
  std::memcpy(out.data(), &n, 8);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    std::uint64_t pair[2] = {subs[i].file_offset, subs[i].length};
    std::memcpy(out.data() + 8 + i * 16, pair, 16);
  }
  return out;
}

std::vector<Extent> decode_records(std::span<const std::byte> pay) {
  if (pay.size() < 8) return {};
  std::uint64_t n = 0;
  std::memcpy(&n, pay.data(), 8);
  if (pay.size() < 8 + n * 16) return {};
  std::vector<Extent> v(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint64_t pair[2];
    std::memcpy(pair, pay.data() + 8 + i * 16, 16);
    v[i] = Extent{pair[0], pair[1], 0};
  }
  return v;
}

/// Byte offset where data begins inside a records+data payload.
std::size_t records_size(const std::vector<Extent>& recs) {
  return 8 + recs.size() * 16;
}

/// Collective write over the aggregator subset.  Parameters by value
/// (coroutine); comm/fs stay alive in the caller's frame across the await.
simkit::Task<void> hier_write(mprt::Comm& comm, pfs::StripedFs& fs,
                              pfs::FileId file, std::vector<Extent> mine,
                              std::span<const std::byte> local_data,
                              TwoPhaseStats* stats, TwoPhaseOptions options) {
  simkit::Engine& eng = comm.engine();
  const TpMeters m;
  const int p = comm.size();
  const int width = mprt::two_level_group_width(p, comm.topology());
  const auto leaders = mprt::two_level_leaders(p, width);
  const int naggs = static_cast<int>(leaders.size());

  const simkit::Time t_meta = eng.now();
  const auto bounds = co_await reduce_bounds(comm, mine);
  const Domains dom = make_domains(bounds.first, bounds.second, naggs,
                                   fs.stripe_map(file).stripe_unit());
  if (stats) stats->exchange_time += eng.now() - t_meta;
  if (m.exchange_s) m.exchange_s->observe(eng.now() - t_meta);
  if (dom.chunk == 0) co_return;  // reduced bounds: all ranks agree

  // ---- exchange phase: records (+ data) to the owning aggregators ------
  const simkit::Time t_x = eng.now();
  const bool with_data = !local_data.empty();
  std::vector<std::uint64_t> send_bytes(static_cast<std::size_t>(p), 0);
  std::vector<std::vector<std::byte>> payload_store(
      static_cast<std::size_t>(p));
  std::vector<std::span<const std::byte>> payload_views(
      static_cast<std::size_t>(p));
  std::uint64_t packed = 0;
  for (int a = 0; a < naggs; ++a) {
    const auto [dlo, dhi] = dom.of(a);
    auto subs = TwoPhase::intersect(mine, dlo, dhi);
    if (subs.empty()) continue;  // nothing for this aggregator: no message
    const std::uint64_t data_bytes = total_length(subs);
    const auto dst = static_cast<std::size_t>(leaders[a]);
    auto& buf = payload_store[dst];
    buf = encode_records(subs);
    if (with_data) {
      buf.reserve(buf.size() + data_bytes);
      for (const auto& s : subs) {
        buf.insert(buf.end(), local_data.begin() + s.buf_offset,
                   local_data.begin() + s.buf_offset + s.length);
      }
    }
    send_bytes[dst] = records_size(subs) + data_bytes;
    payload_views[dst] = buf;
    packed += records_size(subs) + data_bytes;
  }
  co_await comm.machine().mem_copy(packed);  // pack pass
  // Named lvalue: see the GCC 12 note in TwoPhase::write.
  auto received = co_await mprt::alltoallv(comm, send_bytes, payload_views);

  // ---- aggregator side: decode records, assemble runs ------------------
  const bool assemble = fs.is_backed(file);
  const bool is_agg = comm.rank() % width == 0;
  std::vector<Extent> runs;
  std::vector<std::vector<std::byte>> run_bufs;
  std::uint64_t unpacked = 0;
  if (is_agg) {
    std::vector<std::vector<Extent>> recs(static_cast<std::size_t>(p));
    std::vector<Extent> domain_pieces;
    for (int s = 0; s < p; ++s) {
      recs[static_cast<std::size_t>(s)] =
          decode_records(received[static_cast<std::size_t>(s)].payload);
      const auto& rr = recs[static_cast<std::size_t>(s)];
      domain_pieces.insert(domain_pieces.end(), rr.begin(), rr.end());
    }
    runs = TwoPhase::merge_runs(domain_pieces);
    run_bufs.resize(runs.size());
    if (assemble) {
      for (std::size_t i = 0; i < runs.size(); ++i) {
        run_bufs[i].resize(runs[i].length);
      }
      for (int s = 0; s < p; ++s) {
        const auto& rr = recs[static_cast<std::size_t>(s)];
        const auto& pay = received[static_cast<std::size_t>(s)].payload;
        std::size_t cursor = records_size(rr);  // data follows records
        for (const auto& sub : rr) {
          auto it = std::upper_bound(
              runs.begin(), runs.end(), sub.file_offset,
              [](std::uint64_t off, const Extent& r) {
                return off < r.file_offset;
              });
          const auto run_idx = static_cast<std::size_t>(
              std::distance(runs.begin(), std::prev(it)));
          if (pay.size() >= cursor + sub.length) {
            std::memcpy(run_bufs[run_idx].data() +
                            (sub.file_offset - runs[run_idx].file_offset),
                        pay.data() + cursor, sub.length);
          }
          cursor += sub.length;
          unpacked += sub.length;
        }
      }
    } else {
      for (const auto& rr : recs) unpacked += total_length(rr);
    }
  }
  co_await comm.machine().mem_copy(unpacked);  // unpack pass
  if (stats) stats->exchange_time += eng.now() - t_x;
  if (m.exchange_s) m.exchange_s->observe(eng.now() - t_x);

  // ---- I/O phase: only aggregators have runs ---------------------------
  const simkit::Time t_io = eng.now();
  std::exception_ptr deferred;  // see TwoPhaseOptions::retry
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::span<const std::byte> run_view;
    if (assemble) run_view = run_bufs[i];
    if (options.retry) {
      try {
        co_await resilient_pwrite(fs, comm.node(), file,
                                  runs[i].file_offset, runs[i].length,
                                  run_view, *options.retry,
                                  options.retry_stats);
      } catch (const pfs::IoError&) {
        deferred = std::current_exception();
        break;  // abandon my domain; complete the protocol below
      }
    } else {
      co_await fs.pwrite(comm.node(), file, runs[i].file_offset,
                         runs[i].length, run_view);
    }
    if (stats) {
      ++stats->io_calls;
      stats->io_bytes += runs[i].length;
    }
    if (m.io_calls) {
      m.io_calls->inc();
      m.io_bytes->inc(runs[i].length);
    }
  }
  if (stats) stats->io_time += eng.now() - t_io;
  if (m.io_s) m.io_s->observe(eng.now() - t_io);

  co_await mprt::barrier(comm);  // collective completion
  if (deferred) std::rethrow_exception(deferred);
}

/// Collective read over the aggregator subset: a request round (records
/// only), aggregator preads, then a reply round (data in request order).
simkit::Task<void> hier_read(mprt::Comm& comm, pfs::StripedFs& fs,
                             pfs::FileId file, std::vector<Extent> mine,
                             std::span<std::byte> local_out,
                             TwoPhaseStats* stats, TwoPhaseOptions options) {
  simkit::Engine& eng = comm.engine();
  const TpMeters m;
  const int p = comm.size();
  const int width = mprt::two_level_group_width(p, comm.topology());
  const auto leaders = mprt::two_level_leaders(p, width);
  const int naggs = static_cast<int>(leaders.size());

  const simkit::Time t_meta = eng.now();
  const auto bounds = co_await reduce_bounds(comm, mine);
  const Domains dom = make_domains(bounds.first, bounds.second, naggs,
                                   fs.stripe_map(file).stripe_unit());
  if (stats) stats->exchange_time += eng.now() - t_meta;
  if (m.exchange_s) m.exchange_s->observe(eng.now() - t_meta);
  if (dom.chunk == 0) co_return;

  const bool serve_data = fs.is_backed(file);

  // ---- request round: my sub-extent records to each aggregator ---------
  const simkit::Time t_req = eng.now();
  std::vector<std::vector<Extent>> my_subs(static_cast<std::size_t>(naggs));
  std::vector<std::uint64_t> req_bytes(static_cast<std::size_t>(p), 0);
  std::vector<std::vector<std::byte>> req_store(static_cast<std::size_t>(p));
  std::vector<std::span<const std::byte>> req_views(
      static_cast<std::size_t>(p));
  std::uint64_t packed_req = 0;
  for (int a = 0; a < naggs; ++a) {
    const auto [dlo, dhi] = dom.of(a);
    my_subs[static_cast<std::size_t>(a)] =
        TwoPhase::intersect(mine, dlo, dhi);
    const auto& subs = my_subs[static_cast<std::size_t>(a)];
    if (subs.empty()) continue;
    const auto dst = static_cast<std::size_t>(leaders[a]);
    req_store[dst] = encode_records(subs);
    req_bytes[dst] = records_size(subs);
    req_views[dst] = req_store[dst];
    packed_req += records_size(subs);
  }
  co_await comm.machine().mem_copy(packed_req);
  auto requests = co_await mprt::alltoallv(comm, req_bytes, req_views);
  if (stats) stats->exchange_time += eng.now() - t_req;
  if (m.exchange_s) m.exchange_s->observe(eng.now() - t_req);

  // ---- I/O phase (aggregators): pread the merged request runs ----------
  const bool is_agg = comm.rank() % width == 0;
  std::vector<std::vector<Extent>> recs(static_cast<std::size_t>(p));
  std::vector<Extent> runs;
  if (is_agg) {
    std::vector<Extent> domain_pieces;
    for (int s = 0; s < p; ++s) {
      recs[static_cast<std::size_t>(s)] =
          decode_records(requests[static_cast<std::size_t>(s)].payload);
      const auto& rr = recs[static_cast<std::size_t>(s)];
      domain_pieces.insert(domain_pieces.end(), rr.begin(), rr.end());
    }
    runs = TwoPhase::merge_runs(domain_pieces);
  }
  std::vector<std::vector<std::byte>> run_bufs(runs.size());
  const simkit::Time t_io = eng.now();
  std::exception_ptr deferred;  // see TwoPhaseOptions::retry
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (serve_data) run_bufs[i].resize(runs[i].length);
    std::span<std::byte> run_view;
    if (serve_data) run_view = run_bufs[i];
    if (options.retry) {
      try {
        co_await resilient_pread(fs, comm.node(), file,
                                 runs[i].file_offset, runs[i].length,
                                 run_view, *options.retry,
                                 options.retry_stats);
      } catch (const pfs::IoError&) {
        deferred = std::current_exception();
        break;  // serve what we have; the caller discards on rethrow
      }
    } else {
      co_await fs.pread(comm.node(), file, runs[i].file_offset,
                        runs[i].length, run_view);
    }
    if (stats) {
      ++stats->io_calls;
      stats->io_bytes += runs[i].length;
    }
    if (m.io_calls) {
      m.io_calls->inc();
      m.io_bytes->inc(runs[i].length);
    }
  }
  if (stats) stats->io_time += eng.now() - t_io;
  if (m.io_s) m.io_s->observe(eng.now() - t_io);
  if (deferred && serve_data) {
    // Zero-fill unsized runs so the reply pack below stays valid; the
    // caller discards the data on rethrow.
    for (std::size_t i = 0; i < runs.size(); ++i) {
      run_bufs[i].resize(runs[i].length);
    }
  }

  // ---- reply round: data back to requesters, in request order ----------
  const simkit::Time t_x = eng.now();
  std::vector<std::uint64_t> rep_bytes(static_cast<std::size_t>(p), 0);
  std::vector<std::vector<std::byte>> rep_store(static_cast<std::size_t>(p));
  std::vector<std::span<const std::byte>> rep_views(
      static_cast<std::size_t>(p));
  std::uint64_t packed = 0;
  for (int s = 0; s < p; ++s) {
    const auto su = static_cast<std::size_t>(s);
    const std::uint64_t bytes = total_length(recs[su]);
    if (bytes == 0) continue;
    rep_bytes[su] = bytes;
    packed += bytes;
    if (serve_data) {
      auto& buf = rep_store[su];
      buf.reserve(bytes);
      for (const auto& sub : recs[su]) {
        auto it = std::upper_bound(
            runs.begin(), runs.end(), sub.file_offset,
            [](std::uint64_t off, const Extent& r) {
              return off < r.file_offset;
            });
        const auto run_idx = static_cast<std::size_t>(
            std::distance(runs.begin(), std::prev(it)));
        const auto* src = run_bufs[run_idx].data() +
                          (sub.file_offset - runs[run_idx].file_offset);
        buf.insert(buf.end(), src, src + sub.length);
      }
      rep_views[su] = buf;
    }
  }
  co_await comm.machine().mem_copy(packed);  // pack pass
  auto replies = co_await mprt::alltoallv(comm, rep_bytes, rep_views);

  // Scatter replies by my own per-domain request order.
  std::uint64_t unpacked = 0;
  for (int a = 0; a < naggs; ++a) {
    const auto& subs = my_subs[static_cast<std::size_t>(a)];
    const auto& pay =
        replies[static_cast<std::size_t>(leaders[a])].payload;
    std::size_t cursor = 0;
    for (const auto& sub : subs) {
      if (!local_out.empty() && pay.size() >= cursor + sub.length) {
        std::memcpy(local_out.data() + sub.buf_offset, pay.data() + cursor,
                    sub.length);
      }
      cursor += sub.length;
      unpacked += sub.length;
    }
  }
  co_await comm.machine().mem_copy(unpacked);  // unpack pass
  if (stats) stats->exchange_time += eng.now() - t_x;
  if (m.exchange_s) m.exchange_s->observe(eng.now() - t_x);
  if (deferred) std::rethrow_exception(deferred);
}

}  // namespace

std::vector<Extent> TwoPhase::intersect(const std::vector<Extent>& pieces,
                                        std::uint64_t lo, std::uint64_t hi) {
  std::vector<Extent> out;
  for (const auto& e : pieces) {
    const std::uint64_t s = std::max(e.file_offset, lo);
    const std::uint64_t t = std::min(e.file_end(), hi);
    if (s < t) {
      out.push_back(Extent{s, t - s, e.buf_offset + (s - e.file_offset)});
    }
  }
  return out;
}

std::vector<Extent> TwoPhase::merge_runs(std::vector<Extent> pieces) {
  if (pieces.empty()) return pieces;
  std::sort(pieces.begin(), pieces.end(),
            [](const Extent& a, const Extent& b) {
              return a.file_offset < b.file_offset;
            });
  std::vector<Extent> out;
  out.push_back(Extent{pieces[0].file_offset, pieces[0].length, 0});
  for (std::size_t i = 1; i < pieces.size(); ++i) {
    Extent& last = out.back();
    if (pieces[i].file_offset <= last.file_end()) {
      last.length = std::max(last.file_end(), pieces[i].file_end()) -
                    last.file_offset;
    } else {
      out.push_back(Extent{pieces[i].file_offset, pieces[i].length, 0});
    }
  }
  return out;
}

simkit::Task<void> TwoPhase::write(mprt::Comm& comm, pfs::StripedFs& fs,
                                   pfs::FileId file, std::vector<Extent> mine,
                                   std::span<const std::byte> local_data,
                                   TwoPhaseStats* stats,
                                   TwoPhaseOptions options) {
  simkit::Engine& eng = comm.engine();
  const TpMeters m;
  const int p = comm.size();
  std::sort(mine.begin(), mine.end(), [](const Extent& a, const Extent& b) {
    return a.file_offset != b.file_offset ? a.file_offset < b.file_offset
                                          : a.buf_offset < b.buf_offset;
  });
  if (comm.topology().kind == mprt::CollectiveTopology::Kind::kTwoLevel) {
    // Aggregator-subset path: the topology's group leaders do the file
    // I/O; options.aggregators is superseded by the leader set.
    co_await hier_write(comm, fs, file, std::move(mine), local_data, stats,
                        options);
    co_return;
  }

  const simkit::Time t_meta = eng.now();
  auto all = co_await allgather_extents(comm, mine);
  all[static_cast<std::size_t>(comm.rank())] = mine;  // keep buf offsets
  // Ranks beyond the aggregator count own empty file domains and only
  // participate in the exchange (ROMIO's collective-buffering nodes).
  const int aggs = options.aggregators > 0 && options.aggregators <= p
                       ? options.aggregators
                       : p;
  const Domains dom =
      partition(all, aggs, fs.stripe_map(file).stripe_unit());
  if (stats) stats->exchange_time += eng.now() - t_meta;
  if (m.exchange_s) m.exchange_s->observe(eng.now() - t_meta);
  if (dom.chunk == 0) co_return;

  // ---- exchange phase: ship my pieces to their domain owners ----------
  const simkit::Time t_x = eng.now();
  const bool with_data = !local_data.empty();
  std::vector<std::uint64_t> send_bytes(static_cast<std::size_t>(p), 0);
  std::vector<std::vector<std::byte>> payload_store(
      static_cast<std::size_t>(p));
  std::vector<std::span<const std::byte>> payload_views(
      static_cast<std::size_t>(p));
  std::uint64_t packed = 0;
  for (int d = 0; d < p; ++d) {
    const auto [dlo, dhi] = dom.of(d);
    auto subs = intersect(mine, dlo, dhi);
    const std::uint64_t bytes = total_length(subs);
    send_bytes[static_cast<std::size_t>(d)] = bytes;
    packed += bytes;
    if (with_data && bytes > 0) {
      auto& buf = payload_store[static_cast<std::size_t>(d)];
      buf.reserve(bytes);
      for (const auto& s : subs) {
        buf.insert(buf.end(), local_data.begin() + s.buf_offset,
                   local_data.begin() + s.buf_offset + s.length);
      }
      payload_views[static_cast<std::size_t>(d)] = buf;
    }
  }
  co_await comm.machine().mem_copy(packed);  // pack pass
  // NOTE: payload_views stays a named lvalue — passing a temporary vector
  // through co_await trips a GCC 12 coroutine temporary-lifetime bug.
  // All-empty views are equivalent to "no data".
  auto received = co_await mprt::alltoallv(comm, send_bytes, payload_views);

  // ---- I/O phase: assemble my domain and write it in large runs -------
  // Aggregator-side data handling keys off the FILE being backed, not off
  // this rank's own buffer: a rank with no pieces of its own still owns a
  // domain and must land other ranks' real bytes.
  const bool assemble = fs.is_backed(file);
  const auto [my_lo, my_hi] = dom.of(comm.rank());
  std::vector<Extent> domain_pieces;
  for (int s = 0; s < p; ++s) {
    auto subs = intersect(all[static_cast<std::size_t>(s)], my_lo, my_hi);
    domain_pieces.insert(domain_pieces.end(), subs.begin(), subs.end());
  }
  auto runs = merge_runs(domain_pieces);
  std::uint64_t unpacked = 0;
  std::vector<std::vector<std::byte>> run_bufs(runs.size());
  if (assemble) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      run_bufs[i].resize(runs[i].length);
    }
    // Per-source sequential cursors over received payloads.
    for (int s = 0; s < p; ++s) {
      auto subs = intersect(all[static_cast<std::size_t>(s)], my_lo, my_hi);
      const auto& pay = received[static_cast<std::size_t>(s)].payload;
      std::size_t cursor = 0;
      for (const auto& sub : subs) {
        // Locate the run containing this sub-extent.
        auto it = std::upper_bound(
            runs.begin(), runs.end(), sub.file_offset,
            [](std::uint64_t off, const Extent& r) {
              return off < r.file_offset;
            });
        const auto run_idx = static_cast<std::size_t>(
            std::distance(runs.begin(), std::prev(it)));
        if (pay.size() >= cursor + sub.length) {
          std::memcpy(run_bufs[run_idx].data() +
                          (sub.file_offset - runs[run_idx].file_offset),
                      pay.data() + cursor, sub.length);
        }
        cursor += sub.length;
        unpacked += sub.length;
      }
    }
  } else {
    for (int s = 0; s < p; ++s) {
      unpacked += total_length(
          intersect(all[static_cast<std::size_t>(s)], my_lo, my_hi));
    }
  }
  co_await comm.machine().mem_copy(unpacked);  // unpack pass
  if (stats) stats->exchange_time += eng.now() - t_x;
  if (m.exchange_s) m.exchange_s->observe(eng.now() - t_x);

  const simkit::Time t_io = eng.now();
  std::exception_ptr deferred;  // see TwoPhaseOptions::retry
  for (std::size_t i = 0; i < runs.size(); ++i) {
    // Named view, no ternary in the co_await argument list (GCC 12).
    std::span<const std::byte> run_view;
    if (assemble) run_view = run_bufs[i];
    if (options.retry) {
      try {
        co_await resilient_pwrite(fs, comm.node(), file,
                                  runs[i].file_offset, runs[i].length,
                                  run_view, *options.retry,
                                  options.retry_stats);
      } catch (const pfs::IoError&) {
        deferred = std::current_exception();
        break;  // abandon my domain; complete the protocol below
      }
    } else {
      co_await fs.pwrite(comm.node(), file, runs[i].file_offset,
                         runs[i].length, run_view);
    }
    if (stats) {
      ++stats->io_calls;
      stats->io_bytes += runs[i].length;
    }
    if (m.io_calls) {
      m.io_calls->inc();
      m.io_bytes->inc(runs[i].length);
    }
  }
  if (stats) stats->io_time += eng.now() - t_io;
  if (m.io_s) m.io_s->observe(eng.now() - t_io);

  co_await mprt::barrier(comm);  // collective completion
  if (deferred) std::rethrow_exception(deferred);
}

simkit::Task<void> TwoPhase::read(mprt::Comm& comm, pfs::StripedFs& fs,
                                  pfs::FileId file, std::vector<Extent> mine,
                                  std::span<std::byte> local_out,
                                  TwoPhaseStats* stats,
                                  TwoPhaseOptions options) {
  simkit::Engine& eng = comm.engine();
  const TpMeters m;
  const int p = comm.size();
  std::sort(mine.begin(), mine.end(), [](const Extent& a, const Extent& b) {
    return a.file_offset != b.file_offset ? a.file_offset < b.file_offset
                                          : a.buf_offset < b.buf_offset;
  });
  if (comm.topology().kind == mprt::CollectiveTopology::Kind::kTwoLevel) {
    co_await hier_read(comm, fs, file, std::move(mine), local_out, stats,
                       options);
    co_return;
  }

  const simkit::Time t_meta = eng.now();
  auto all = co_await allgather_extents(comm, mine);
  all[static_cast<std::size_t>(comm.rank())] = mine;
  const int aggs = options.aggregators > 0 && options.aggregators <= p
                       ? options.aggregators
                       : p;
  const Domains dom =
      partition(all, aggs, fs.stripe_map(file).stripe_unit());
  if (stats) stats->exchange_time += eng.now() - t_meta;
  if (m.exchange_s) m.exchange_s->observe(eng.now() - t_meta);
  if (dom.chunk == 0) co_return;

  // Aggregator-side data handling keys off the FILE being backed (see the
  // note in write()); only the final scatter depends on local_out.
  const bool serve_data = fs.is_backed(file);

  // ---- I/O phase: read my domain's needed runs -------------------------
  const auto [my_lo, my_hi] = dom.of(comm.rank());
  std::vector<Extent> domain_pieces;
  for (int s = 0; s < p; ++s) {
    auto subs = intersect(all[static_cast<std::size_t>(s)], my_lo, my_hi);
    domain_pieces.insert(domain_pieces.end(), subs.begin(), subs.end());
  }
  auto runs = merge_runs(domain_pieces);
  std::vector<std::vector<std::byte>> run_bufs(runs.size());
  const simkit::Time t_io = eng.now();
  std::exception_ptr deferred;  // see TwoPhaseOptions::retry
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (serve_data) run_bufs[i].resize(runs[i].length);
    std::span<std::byte> run_view;
    if (serve_data) run_view = run_bufs[i];
    if (options.retry) {
      try {
        co_await resilient_pread(fs, comm.node(), file,
                                 runs[i].file_offset, runs[i].length,
                                 run_view, *options.retry,
                                 options.retry_stats);
      } catch (const pfs::IoError&) {
        deferred = std::current_exception();
        break;  // serve what we have; the caller discards on rethrow
      }
    } else {
      co_await fs.pread(comm.node(), file, runs[i].file_offset,
                        runs[i].length, run_view);
    }
    if (stats) {
      ++stats->io_calls;
      stats->io_bytes += runs[i].length;
    }
    if (m.io_calls) {
      m.io_calls->inc();
      m.io_bytes->inc(runs[i].length);
    }
  }
  if (stats) stats->io_time += eng.now() - t_io;
  if (m.io_s) m.io_s->observe(eng.now() - t_io);
  if (deferred && serve_data) {
    // A failed read broke out of the loop with later runs still unsized,
    // but the pack pass below reads from every run.  Give them valid
    // (zero-filled) storage; the caller discards the data on rethrow.
    for (std::size_t i = 0; i < runs.size(); ++i) {
      run_bufs[i].resize(runs[i].length);
    }
  }

  // ---- exchange phase: ship pieces to their requesters -----------------
  const simkit::Time t_x = eng.now();
  std::vector<std::uint64_t> send_bytes(static_cast<std::size_t>(p), 0);
  std::vector<std::vector<std::byte>> payload_store(
      static_cast<std::size_t>(p));
  std::vector<std::span<const std::byte>> payload_views(
      static_cast<std::size_t>(p));
  std::uint64_t packed = 0;
  for (int s = 0; s < p; ++s) {
    auto subs = intersect(all[static_cast<std::size_t>(s)], my_lo, my_hi);
    const std::uint64_t bytes = total_length(subs);
    send_bytes[static_cast<std::size_t>(s)] = bytes;
    packed += bytes;
    if (serve_data && bytes > 0) {
      auto& buf = payload_store[static_cast<std::size_t>(s)];
      buf.reserve(bytes);
      for (const auto& sub : subs) {
        auto it = std::upper_bound(
            runs.begin(), runs.end(), sub.file_offset,
            [](std::uint64_t off, const Extent& r) {
              return off < r.file_offset;
            });
        const auto run_idx = static_cast<std::size_t>(
            std::distance(runs.begin(), std::prev(it)));
        const auto* src = run_bufs[run_idx].data() +
                          (sub.file_offset - runs[run_idx].file_offset);
        buf.insert(buf.end(), src, src + sub.length);
      }
      payload_views[static_cast<std::size_t>(s)] = buf;
    }
  }
  co_await comm.machine().mem_copy(packed);  // pack pass
  // Named lvalue: see the GCC 12 note in write().
  auto received = co_await mprt::alltoallv(comm, send_bytes, payload_views);

  // Scatter replies into my local buffer, per-domain sequential order.
  std::uint64_t unpacked = 0;
  for (int d = 0; d < p; ++d) {
    const auto [dlo, dhi] = dom.of(d);
    auto subs = intersect(mine, dlo, dhi);
    const auto& pay = received[static_cast<std::size_t>(d)].payload;
    std::size_t cursor = 0;
    for (const auto& sub : subs) {
      if (!local_out.empty() && pay.size() >= cursor + sub.length) {
        std::memcpy(local_out.data() + sub.buf_offset, pay.data() + cursor,
                    sub.length);
      }
      cursor += sub.length;
      unpacked += sub.length;
    }
  }
  co_await comm.machine().mem_copy(unpacked);  // unpack pass
  if (stats) stats->exchange_time += eng.now() - t_x;
  if (m.exchange_s) m.exchange_s->observe(eng.now() - t_x);
  if (deferred) std::rethrow_exception(deferred);
}

}  // namespace pario
