// pario/extent.hpp — scattered-access descriptors shared by the library.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace pario {

/// One piece of a scattered file access: file range + where it sits in the
/// caller's (flattened) local buffer.
struct Extent {
  std::uint64_t file_offset = 0;
  std::uint64_t length = 0;
  std::uint64_t buf_offset = 0;

  std::uint64_t file_end() const noexcept { return file_offset + length; }
  bool operator==(const Extent&) const = default;
};

/// Sort by file offset and merge pieces that are contiguous in BOTH the
/// file and the buffer (so a single I/O call plus a single copy serves
/// them).  Returns the coalesced list.
inline std::vector<Extent> coalesce(std::vector<Extent> pieces) {
  if (pieces.empty()) return pieces;
  std::sort(pieces.begin(), pieces.end(),
            [](const Extent& a, const Extent& b) {
              return a.file_offset < b.file_offset;
            });
  std::vector<Extent> out;
  out.push_back(pieces.front());
  for (std::size_t i = 1; i < pieces.size(); ++i) {
    Extent& last = out.back();
    const Extent& cur = pieces[i];
    if (cur.file_offset == last.file_end() &&
        cur.buf_offset == last.buf_offset + last.length) {
      last.length += cur.length;
    } else {
      out.push_back(cur);
    }
  }
  return out;
}

/// Total bytes described.
inline std::uint64_t total_length(const std::vector<Extent>& pieces) {
  std::uint64_t n = 0;
  for (const auto& e : pieces) n += e.length;
  return n;
}

}  // namespace pario
