file(REMOVE_RECURSE
  "CMakeFiles/out_of_core_transpose.dir/out_of_core_transpose.cpp.o"
  "CMakeFiles/out_of_core_transpose.dir/out_of_core_transpose.cpp.o.d"
  "out_of_core_transpose"
  "out_of_core_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_of_core_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
