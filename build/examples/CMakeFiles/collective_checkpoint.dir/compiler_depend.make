# Empty compiler generated dependencies file for collective_checkpoint.
# This may be replaced when dependencies are built.
