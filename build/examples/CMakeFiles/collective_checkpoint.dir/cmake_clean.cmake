file(REMOVE_RECURSE
  "CMakeFiles/collective_checkpoint.dir/collective_checkpoint.cpp.o"
  "CMakeFiles/collective_checkpoint.dir/collective_checkpoint.cpp.o.d"
  "collective_checkpoint"
  "collective_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
