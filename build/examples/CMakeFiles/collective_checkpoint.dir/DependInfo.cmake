
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/collective_checkpoint.cpp" "examples/CMakeFiles/collective_checkpoint.dir/collective_checkpoint.cpp.o" "gcc" "examples/CMakeFiles/collective_checkpoint.dir/collective_checkpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/pario/CMakeFiles/pario.dir/DependInfo.cmake"
  "/root/repo/build/src/mprt/CMakeFiles/mprt.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/expt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
