file(REMOVE_RECURSE
  "CMakeFiles/pablo_trace.dir/pablo_trace.cpp.o"
  "CMakeFiles/pablo_trace.dir/pablo_trace.cpp.o.d"
  "pablo_trace"
  "pablo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pablo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
