# Empty dependencies file for pablo_trace.
# This may be replaced when dependencies are built.
