file(REMOVE_RECURSE
  "CMakeFiles/machine_comparison.dir/machine_comparison.cpp.o"
  "CMakeFiles/machine_comparison.dir/machine_comparison.cpp.o.d"
  "machine_comparison"
  "machine_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
