# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simkit_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_test[1]_include.cmake")
include("/root/repo/build/tests/mprt_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/numeric_test[1]_include.cmake")
include("/root/repo/build/tests/pario_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
