file(REMOVE_RECURSE
  "CMakeFiles/simkit_test.dir/simkit/channel_test.cpp.o"
  "CMakeFiles/simkit_test.dir/simkit/channel_test.cpp.o.d"
  "CMakeFiles/simkit_test.dir/simkit/combinators_test.cpp.o"
  "CMakeFiles/simkit_test.dir/simkit/combinators_test.cpp.o.d"
  "CMakeFiles/simkit_test.dir/simkit/engine_test.cpp.o"
  "CMakeFiles/simkit_test.dir/simkit/engine_test.cpp.o.d"
  "CMakeFiles/simkit_test.dir/simkit/resource_test.cpp.o"
  "CMakeFiles/simkit_test.dir/simkit/resource_test.cpp.o.d"
  "CMakeFiles/simkit_test.dir/simkit/rng_test.cpp.o"
  "CMakeFiles/simkit_test.dir/simkit/rng_test.cpp.o.d"
  "CMakeFiles/simkit_test.dir/simkit/stats_test.cpp.o"
  "CMakeFiles/simkit_test.dir/simkit/stats_test.cpp.o.d"
  "CMakeFiles/simkit_test.dir/simkit/task_test.cpp.o"
  "CMakeFiles/simkit_test.dir/simkit/task_test.cpp.o.d"
  "CMakeFiles/simkit_test.dir/simkit/trigger_test.cpp.o"
  "CMakeFiles/simkit_test.dir/simkit/trigger_test.cpp.o.d"
  "simkit_test"
  "simkit_test.pdb"
  "simkit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
