
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simkit/channel_test.cpp" "tests/CMakeFiles/simkit_test.dir/simkit/channel_test.cpp.o" "gcc" "tests/CMakeFiles/simkit_test.dir/simkit/channel_test.cpp.o.d"
  "/root/repo/tests/simkit/combinators_test.cpp" "tests/CMakeFiles/simkit_test.dir/simkit/combinators_test.cpp.o" "gcc" "tests/CMakeFiles/simkit_test.dir/simkit/combinators_test.cpp.o.d"
  "/root/repo/tests/simkit/engine_test.cpp" "tests/CMakeFiles/simkit_test.dir/simkit/engine_test.cpp.o" "gcc" "tests/CMakeFiles/simkit_test.dir/simkit/engine_test.cpp.o.d"
  "/root/repo/tests/simkit/resource_test.cpp" "tests/CMakeFiles/simkit_test.dir/simkit/resource_test.cpp.o" "gcc" "tests/CMakeFiles/simkit_test.dir/simkit/resource_test.cpp.o.d"
  "/root/repo/tests/simkit/rng_test.cpp" "tests/CMakeFiles/simkit_test.dir/simkit/rng_test.cpp.o" "gcc" "tests/CMakeFiles/simkit_test.dir/simkit/rng_test.cpp.o.d"
  "/root/repo/tests/simkit/stats_test.cpp" "tests/CMakeFiles/simkit_test.dir/simkit/stats_test.cpp.o" "gcc" "tests/CMakeFiles/simkit_test.dir/simkit/stats_test.cpp.o.d"
  "/root/repo/tests/simkit/task_test.cpp" "tests/CMakeFiles/simkit_test.dir/simkit/task_test.cpp.o" "gcc" "tests/CMakeFiles/simkit_test.dir/simkit/task_test.cpp.o.d"
  "/root/repo/tests/simkit/trigger_test.cpp" "tests/CMakeFiles/simkit_test.dir/simkit/trigger_test.cpp.o" "gcc" "tests/CMakeFiles/simkit_test.dir/simkit/trigger_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
