file(REMOVE_RECURSE
  "CMakeFiles/mprt_test.dir/mprt/collectives_test.cpp.o"
  "CMakeFiles/mprt_test.dir/mprt/collectives_test.cpp.o.d"
  "CMakeFiles/mprt_test.dir/mprt/comm_test.cpp.o"
  "CMakeFiles/mprt_test.dir/mprt/comm_test.cpp.o.d"
  "CMakeFiles/mprt_test.dir/mprt/isend_test.cpp.o"
  "CMakeFiles/mprt_test.dir/mprt/isend_test.cpp.o.d"
  "mprt_test"
  "mprt_test.pdb"
  "mprt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mprt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
