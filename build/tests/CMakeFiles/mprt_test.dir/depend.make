# Empty dependencies file for mprt_test.
# This may be replaced when dependencies are built.
