
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/disk_test.cpp" "tests/CMakeFiles/hw_test.dir/hw/disk_test.cpp.o" "gcc" "tests/CMakeFiles/hw_test.dir/hw/disk_test.cpp.o.d"
  "/root/repo/tests/hw/machine_test.cpp" "tests/CMakeFiles/hw_test.dir/hw/machine_test.cpp.o" "gcc" "tests/CMakeFiles/hw_test.dir/hw/machine_test.cpp.o.d"
  "/root/repo/tests/hw/network_test.cpp" "tests/CMakeFiles/hw_test.dir/hw/network_test.cpp.o" "gcc" "tests/CMakeFiles/hw_test.dir/hw/network_test.cpp.o.d"
  "/root/repo/tests/hw/zoned_test.cpp" "tests/CMakeFiles/hw_test.dir/hw/zoned_test.cpp.o" "gcc" "tests/CMakeFiles/hw_test.dir/hw/zoned_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
