file(REMOVE_RECURSE
  "CMakeFiles/pfs_test.dir/pfs/cache_test.cpp.o"
  "CMakeFiles/pfs_test.dir/pfs/cache_test.cpp.o.d"
  "CMakeFiles/pfs_test.dir/pfs/diskarm_test.cpp.o"
  "CMakeFiles/pfs_test.dir/pfs/diskarm_test.cpp.o.d"
  "CMakeFiles/pfs_test.dir/pfs/fs_edge_test.cpp.o"
  "CMakeFiles/pfs_test.dir/pfs/fs_edge_test.cpp.o.d"
  "CMakeFiles/pfs_test.dir/pfs/fs_test.cpp.o"
  "CMakeFiles/pfs_test.dir/pfs/fs_test.cpp.o.d"
  "CMakeFiles/pfs_test.dir/pfs/layout_test.cpp.o"
  "CMakeFiles/pfs_test.dir/pfs/layout_test.cpp.o.d"
  "CMakeFiles/pfs_test.dir/pfs/modes_test.cpp.o"
  "CMakeFiles/pfs_test.dir/pfs/modes_test.cpp.o.d"
  "CMakeFiles/pfs_test.dir/pfs/store_test.cpp.o"
  "CMakeFiles/pfs_test.dir/pfs/store_test.cpp.o.d"
  "CMakeFiles/pfs_test.dir/pfs/truncate_test.cpp.o"
  "CMakeFiles/pfs_test.dir/pfs/truncate_test.cpp.o.d"
  "pfs_test"
  "pfs_test.pdb"
  "pfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
