
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pfs/cache_test.cpp" "tests/CMakeFiles/pfs_test.dir/pfs/cache_test.cpp.o" "gcc" "tests/CMakeFiles/pfs_test.dir/pfs/cache_test.cpp.o.d"
  "/root/repo/tests/pfs/diskarm_test.cpp" "tests/CMakeFiles/pfs_test.dir/pfs/diskarm_test.cpp.o" "gcc" "tests/CMakeFiles/pfs_test.dir/pfs/diskarm_test.cpp.o.d"
  "/root/repo/tests/pfs/fs_edge_test.cpp" "tests/CMakeFiles/pfs_test.dir/pfs/fs_edge_test.cpp.o" "gcc" "tests/CMakeFiles/pfs_test.dir/pfs/fs_edge_test.cpp.o.d"
  "/root/repo/tests/pfs/fs_test.cpp" "tests/CMakeFiles/pfs_test.dir/pfs/fs_test.cpp.o" "gcc" "tests/CMakeFiles/pfs_test.dir/pfs/fs_test.cpp.o.d"
  "/root/repo/tests/pfs/layout_test.cpp" "tests/CMakeFiles/pfs_test.dir/pfs/layout_test.cpp.o" "gcc" "tests/CMakeFiles/pfs_test.dir/pfs/layout_test.cpp.o.d"
  "/root/repo/tests/pfs/modes_test.cpp" "tests/CMakeFiles/pfs_test.dir/pfs/modes_test.cpp.o" "gcc" "tests/CMakeFiles/pfs_test.dir/pfs/modes_test.cpp.o.d"
  "/root/repo/tests/pfs/store_test.cpp" "tests/CMakeFiles/pfs_test.dir/pfs/store_test.cpp.o" "gcc" "tests/CMakeFiles/pfs_test.dir/pfs/store_test.cpp.o.d"
  "/root/repo/tests/pfs/truncate_test.cpp" "tests/CMakeFiles/pfs_test.dir/pfs/truncate_test.cpp.o" "gcc" "tests/CMakeFiles/pfs_test.dir/pfs/truncate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pfs/CMakeFiles/pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mprt/CMakeFiles/mprt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
