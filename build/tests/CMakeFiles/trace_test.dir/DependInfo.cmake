
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/quantiles_test.cpp" "tests/CMakeFiles/trace_test.dir/trace/quantiles_test.cpp.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/quantiles_test.cpp.o.d"
  "/root/repo/tests/trace/sddf_test.cpp" "tests/CMakeFiles/trace_test.dir/trace/sddf_test.cpp.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/sddf_test.cpp.o.d"
  "/root/repo/tests/trace/tracer_test.cpp" "tests/CMakeFiles/trace_test.dir/trace/tracer_test.cpp.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/tracer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mprt/CMakeFiles/mprt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
