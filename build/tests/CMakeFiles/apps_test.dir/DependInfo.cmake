
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/ast_test.cpp" "tests/CMakeFiles/apps_test.dir/apps/ast_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/ast_test.cpp.o.d"
  "/root/repo/tests/apps/btio_test.cpp" "tests/CMakeFiles/apps_test.dir/apps/btio_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/btio_test.cpp.o.d"
  "/root/repo/tests/apps/classc_test.cpp" "tests/CMakeFiles/apps_test.dir/apps/classc_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/classc_test.cpp.o.d"
  "/root/repo/tests/apps/fft_test.cpp" "tests/CMakeFiles/apps_test.dir/apps/fft_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/fft_test.cpp.o.d"
  "/root/repo/tests/apps/phases_test.cpp" "tests/CMakeFiles/apps_test.dir/apps/phases_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/phases_test.cpp.o.d"
  "/root/repo/tests/apps/scf3_test.cpp" "tests/CMakeFiles/apps_test.dir/apps/scf3_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/scf3_test.cpp.o.d"
  "/root/repo/tests/apps/scf_knobs_test.cpp" "tests/CMakeFiles/apps_test.dir/apps/scf_knobs_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/scf_knobs_test.cpp.o.d"
  "/root/repo/tests/apps/scf_test.cpp" "tests/CMakeFiles/apps_test.dir/apps/scf_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/scf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/pario/CMakeFiles/pario.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mprt/CMakeFiles/mprt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
