file(REMOVE_RECURSE
  "CMakeFiles/pario_test.dir/pario/advisor_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/advisor_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/aggregators_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/aggregators_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/balance_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/balance_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/datatype_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/datatype_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/extent_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/extent_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/interface_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/interface_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/ooc_array_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/ooc_array_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/prefetch_tail_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/prefetch_tail_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/prefetch_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/prefetch_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/sieve_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/sieve_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/twophase_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/twophase_test.cpp.o.d"
  "CMakeFiles/pario_test.dir/pario/viewio_test.cpp.o"
  "CMakeFiles/pario_test.dir/pario/viewio_test.cpp.o.d"
  "pario_test"
  "pario_test.pdb"
  "pario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
