
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pario/advisor_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/advisor_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/advisor_test.cpp.o.d"
  "/root/repo/tests/pario/aggregators_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/aggregators_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/aggregators_test.cpp.o.d"
  "/root/repo/tests/pario/balance_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/balance_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/balance_test.cpp.o.d"
  "/root/repo/tests/pario/datatype_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/datatype_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/datatype_test.cpp.o.d"
  "/root/repo/tests/pario/extent_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/extent_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/extent_test.cpp.o.d"
  "/root/repo/tests/pario/interface_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/interface_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/interface_test.cpp.o.d"
  "/root/repo/tests/pario/ooc_array_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/ooc_array_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/ooc_array_test.cpp.o.d"
  "/root/repo/tests/pario/prefetch_tail_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/prefetch_tail_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/prefetch_tail_test.cpp.o.d"
  "/root/repo/tests/pario/prefetch_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/prefetch_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/prefetch_test.cpp.o.d"
  "/root/repo/tests/pario/sieve_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/sieve_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/sieve_test.cpp.o.d"
  "/root/repo/tests/pario/twophase_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/twophase_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/twophase_test.cpp.o.d"
  "/root/repo/tests/pario/viewio_test.cpp" "tests/CMakeFiles/pario_test.dir/pario/viewio_test.cpp.o" "gcc" "tests/CMakeFiles/pario_test.dir/pario/viewio_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pario/CMakeFiles/pario.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mprt/CMakeFiles/mprt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
