# Empty dependencies file for pario_test.
# This may be replaced when dependencies are built.
