file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_twophase.dir/bench_micro_twophase.cpp.o"
  "CMakeFiles/bench_micro_twophase.dir/bench_micro_twophase.cpp.o.d"
  "bench_micro_twophase"
  "bench_micro_twophase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_twophase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
