# Empty dependencies file for bench_micro_twophase.
# This may be replaced when dependencies are built.
