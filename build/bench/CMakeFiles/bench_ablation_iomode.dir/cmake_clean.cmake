file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iomode.dir/bench_ablation_iomode.cpp.o"
  "CMakeFiles/bench_ablation_iomode.dir/bench_ablation_iomode.cpp.o.d"
  "bench_ablation_iomode"
  "bench_ablation_iomode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iomode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
