# Empty compiler generated dependencies file for bench_ablation_iomode.
# This may be replaced when dependencies are built.
