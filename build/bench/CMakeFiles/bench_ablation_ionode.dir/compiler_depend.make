# Empty compiler generated dependencies file for bench_ablation_ionode.
# This may be replaced when dependencies are built.
