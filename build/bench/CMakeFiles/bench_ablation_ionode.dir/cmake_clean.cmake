file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ionode.dir/bench_ablation_ionode.cpp.o"
  "CMakeFiles/bench_ablation_ionode.dir/bench_ablation_ionode.cpp.o.d"
  "bench_ablation_ionode"
  "bench_ablation_ionode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ionode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
