file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pfs.dir/bench_micro_pfs.cpp.o"
  "CMakeFiles/bench_micro_pfs.dir/bench_micro_pfs.cpp.o.d"
  "bench_micro_pfs"
  "bench_micro_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
