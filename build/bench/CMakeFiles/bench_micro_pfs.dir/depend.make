# Empty dependencies file for bench_micro_pfs.
# This may be replaced when dependencies are built.
