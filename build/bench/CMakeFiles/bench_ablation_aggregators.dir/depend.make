# Empty dependencies file for bench_ablation_aggregators.
# This may be replaced when dependencies are built.
