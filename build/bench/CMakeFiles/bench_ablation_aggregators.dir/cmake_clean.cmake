file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aggregators.dir/bench_ablation_aggregators.cpp.o"
  "CMakeFiles/bench_ablation_aggregators.dir/bench_ablation_aggregators.cpp.o.d"
  "bench_ablation_aggregators"
  "bench_ablation_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
