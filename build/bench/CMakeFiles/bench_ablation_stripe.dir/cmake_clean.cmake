file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stripe.dir/bench_ablation_stripe.cpp.o"
  "CMakeFiles/bench_ablation_stripe.dir/bench_ablation_stripe.cpp.o.d"
  "bench_ablation_stripe"
  "bench_ablation_stripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
