# Empty dependencies file for bench_micro_simkit.
# This may be replaced when dependencies are built.
