file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_simkit.dir/bench_micro_simkit.cpp.o"
  "CMakeFiles/bench_micro_simkit.dir/bench_micro_simkit.cpp.o.d"
  "bench_micro_simkit"
  "bench_micro_simkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_simkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
