file(REMOVE_RECURSE
  "libmprt.a"
)
