file(REMOVE_RECURSE
  "CMakeFiles/mprt.dir/collectives.cpp.o"
  "CMakeFiles/mprt.dir/collectives.cpp.o.d"
  "CMakeFiles/mprt.dir/comm.cpp.o"
  "CMakeFiles/mprt.dir/comm.cpp.o.d"
  "libmprt.a"
  "libmprt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mprt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
