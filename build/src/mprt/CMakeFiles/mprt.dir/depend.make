# Empty dependencies file for mprt.
# This may be replaced when dependencies are built.
