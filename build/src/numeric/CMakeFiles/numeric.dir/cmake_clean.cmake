file(REMOVE_RECURSE
  "CMakeFiles/numeric.dir/fft.cpp.o"
  "CMakeFiles/numeric.dir/fft.cpp.o.d"
  "libnumeric.a"
  "libnumeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
