# Empty compiler generated dependencies file for numeric.
# This may be replaced when dependencies are built.
