file(REMOVE_RECURSE
  "libnumeric.a"
)
