file(REMOVE_RECURSE
  "CMakeFiles/simkit.dir/engine.cpp.o"
  "CMakeFiles/simkit.dir/engine.cpp.o.d"
  "CMakeFiles/simkit.dir/rng.cpp.o"
  "CMakeFiles/simkit.dir/rng.cpp.o.d"
  "libsimkit.a"
  "libsimkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
