file(REMOVE_RECURSE
  "CMakeFiles/trace.dir/sddf.cpp.o"
  "CMakeFiles/trace.dir/sddf.cpp.o.d"
  "CMakeFiles/trace.dir/tracer.cpp.o"
  "CMakeFiles/trace.dir/tracer.cpp.o.d"
  "libtrace.a"
  "libtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
