# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simkit")
subdirs("hw")
subdirs("pfs")
subdirs("mprt")
subdirs("trace")
subdirs("pario")
subdirs("numeric")
subdirs("apps")
subdirs("exp")
