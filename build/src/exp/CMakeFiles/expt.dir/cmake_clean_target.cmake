file(REMOVE_RECURSE
  "libexpt.a"
)
