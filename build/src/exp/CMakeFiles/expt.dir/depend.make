# Empty dependencies file for expt.
# This may be replaced when dependencies are built.
