file(REMOVE_RECURSE
  "CMakeFiles/expt.dir/report.cpp.o"
  "CMakeFiles/expt.dir/report.cpp.o.d"
  "CMakeFiles/expt.dir/table.cpp.o"
  "CMakeFiles/expt.dir/table.cpp.o.d"
  "libexpt.a"
  "libexpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
