
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/report.cpp" "src/exp/CMakeFiles/expt.dir/report.cpp.o" "gcc" "src/exp/CMakeFiles/expt.dir/report.cpp.o.d"
  "/root/repo/src/exp/table.cpp" "src/exp/CMakeFiles/expt.dir/table.cpp.o" "gcc" "src/exp/CMakeFiles/expt.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pfs/CMakeFiles/pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mprt/CMakeFiles/mprt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
