
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/diskarm.cpp" "src/pfs/CMakeFiles/pfs.dir/diskarm.cpp.o" "gcc" "src/pfs/CMakeFiles/pfs.dir/diskarm.cpp.o.d"
  "/root/repo/src/pfs/fs.cpp" "src/pfs/CMakeFiles/pfs.dir/fs.cpp.o" "gcc" "src/pfs/CMakeFiles/pfs.dir/fs.cpp.o.d"
  "/root/repo/src/pfs/ionode.cpp" "src/pfs/CMakeFiles/pfs.dir/ionode.cpp.o" "gcc" "src/pfs/CMakeFiles/pfs.dir/ionode.cpp.o.d"
  "/root/repo/src/pfs/modes.cpp" "src/pfs/CMakeFiles/pfs.dir/modes.cpp.o" "gcc" "src/pfs/CMakeFiles/pfs.dir/modes.cpp.o.d"
  "/root/repo/src/pfs/store.cpp" "src/pfs/CMakeFiles/pfs.dir/store.cpp.o" "gcc" "src/pfs/CMakeFiles/pfs.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mprt/CMakeFiles/mprt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
