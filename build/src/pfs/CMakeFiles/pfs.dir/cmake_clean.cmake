file(REMOVE_RECURSE
  "CMakeFiles/pfs.dir/diskarm.cpp.o"
  "CMakeFiles/pfs.dir/diskarm.cpp.o.d"
  "CMakeFiles/pfs.dir/fs.cpp.o"
  "CMakeFiles/pfs.dir/fs.cpp.o.d"
  "CMakeFiles/pfs.dir/ionode.cpp.o"
  "CMakeFiles/pfs.dir/ionode.cpp.o.d"
  "CMakeFiles/pfs.dir/modes.cpp.o"
  "CMakeFiles/pfs.dir/modes.cpp.o.d"
  "CMakeFiles/pfs.dir/store.cpp.o"
  "CMakeFiles/pfs.dir/store.cpp.o.d"
  "libpfs.a"
  "libpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
