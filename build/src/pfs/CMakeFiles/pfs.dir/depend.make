# Empty dependencies file for pfs.
# This may be replaced when dependencies are built.
