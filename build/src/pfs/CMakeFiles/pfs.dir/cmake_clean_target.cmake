file(REMOVE_RECURSE
  "libpfs.a"
)
