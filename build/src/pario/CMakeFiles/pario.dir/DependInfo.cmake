
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pario/advisor.cpp" "src/pario/CMakeFiles/pario.dir/advisor.cpp.o" "gcc" "src/pario/CMakeFiles/pario.dir/advisor.cpp.o.d"
  "/root/repo/src/pario/balance.cpp" "src/pario/CMakeFiles/pario.dir/balance.cpp.o" "gcc" "src/pario/CMakeFiles/pario.dir/balance.cpp.o.d"
  "/root/repo/src/pario/datatype.cpp" "src/pario/CMakeFiles/pario.dir/datatype.cpp.o" "gcc" "src/pario/CMakeFiles/pario.dir/datatype.cpp.o.d"
  "/root/repo/src/pario/interface.cpp" "src/pario/CMakeFiles/pario.dir/interface.cpp.o" "gcc" "src/pario/CMakeFiles/pario.dir/interface.cpp.o.d"
  "/root/repo/src/pario/ooc_array.cpp" "src/pario/CMakeFiles/pario.dir/ooc_array.cpp.o" "gcc" "src/pario/CMakeFiles/pario.dir/ooc_array.cpp.o.d"
  "/root/repo/src/pario/prefetch.cpp" "src/pario/CMakeFiles/pario.dir/prefetch.cpp.o" "gcc" "src/pario/CMakeFiles/pario.dir/prefetch.cpp.o.d"
  "/root/repo/src/pario/sieve.cpp" "src/pario/CMakeFiles/pario.dir/sieve.cpp.o" "gcc" "src/pario/CMakeFiles/pario.dir/sieve.cpp.o.d"
  "/root/repo/src/pario/twophase.cpp" "src/pario/CMakeFiles/pario.dir/twophase.cpp.o" "gcc" "src/pario/CMakeFiles/pario.dir/twophase.cpp.o.d"
  "/root/repo/src/pario/viewio.cpp" "src/pario/CMakeFiles/pario.dir/viewio.cpp.o" "gcc" "src/pario/CMakeFiles/pario.dir/viewio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mprt/CMakeFiles/mprt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
