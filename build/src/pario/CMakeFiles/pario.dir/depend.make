# Empty dependencies file for pario.
# This may be replaced when dependencies are built.
