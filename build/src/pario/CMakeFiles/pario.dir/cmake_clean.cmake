file(REMOVE_RECURSE
  "CMakeFiles/pario.dir/advisor.cpp.o"
  "CMakeFiles/pario.dir/advisor.cpp.o.d"
  "CMakeFiles/pario.dir/balance.cpp.o"
  "CMakeFiles/pario.dir/balance.cpp.o.d"
  "CMakeFiles/pario.dir/datatype.cpp.o"
  "CMakeFiles/pario.dir/datatype.cpp.o.d"
  "CMakeFiles/pario.dir/interface.cpp.o"
  "CMakeFiles/pario.dir/interface.cpp.o.d"
  "CMakeFiles/pario.dir/ooc_array.cpp.o"
  "CMakeFiles/pario.dir/ooc_array.cpp.o.d"
  "CMakeFiles/pario.dir/prefetch.cpp.o"
  "CMakeFiles/pario.dir/prefetch.cpp.o.d"
  "CMakeFiles/pario.dir/sieve.cpp.o"
  "CMakeFiles/pario.dir/sieve.cpp.o.d"
  "CMakeFiles/pario.dir/twophase.cpp.o"
  "CMakeFiles/pario.dir/twophase.cpp.o.d"
  "CMakeFiles/pario.dir/viewio.cpp.o"
  "CMakeFiles/pario.dir/viewio.cpp.o.d"
  "libpario.a"
  "libpario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
