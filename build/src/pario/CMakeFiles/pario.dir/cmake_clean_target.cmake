file(REMOVE_RECURSE
  "libpario.a"
)
