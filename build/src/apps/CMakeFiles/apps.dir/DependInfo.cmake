
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/ast.cpp" "src/apps/CMakeFiles/apps.dir/ast.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/ast.cpp.o.d"
  "/root/repo/src/apps/btio.cpp" "src/apps/CMakeFiles/apps.dir/btio.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/btio.cpp.o.d"
  "/root/repo/src/apps/fft_app.cpp" "src/apps/CMakeFiles/apps.dir/fft_app.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/fft_app.cpp.o.d"
  "/root/repo/src/apps/scf.cpp" "src/apps/CMakeFiles/apps.dir/scf.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/scf.cpp.o.d"
  "/root/repo/src/apps/scf3.cpp" "src/apps/CMakeFiles/apps.dir/scf3.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/scf3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mprt/CMakeFiles/mprt.dir/DependInfo.cmake"
  "/root/repo/build/src/pario/CMakeFiles/pario.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
