file(REMOVE_RECURSE
  "CMakeFiles/apps.dir/ast.cpp.o"
  "CMakeFiles/apps.dir/ast.cpp.o.d"
  "CMakeFiles/apps.dir/btio.cpp.o"
  "CMakeFiles/apps.dir/btio.cpp.o.d"
  "CMakeFiles/apps.dir/fft_app.cpp.o"
  "CMakeFiles/apps.dir/fft_app.cpp.o.d"
  "CMakeFiles/apps.dir/scf.cpp.o"
  "CMakeFiles/apps.dir/scf.cpp.o.d"
  "CMakeFiles/apps.dir/scf3.cpp.o"
  "CMakeFiles/apps.dir/scf3.cpp.o.d"
  "libapps.a"
  "libapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
