file(REMOVE_RECURSE
  "CMakeFiles/hw.dir/disk.cpp.o"
  "CMakeFiles/hw.dir/disk.cpp.o.d"
  "CMakeFiles/hw.dir/machine.cpp.o"
  "CMakeFiles/hw.dir/machine.cpp.o.d"
  "libhw.a"
  "libhw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
